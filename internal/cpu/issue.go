package cpu

import (
	"sort"

	"mtexc/internal/isa"
	"mtexc/internal/obs"
	"mtexc/internal/vm"
)

// dispatch moves decoded instructions from the per-thread fetch
// buffers into the shared instruction window, consuming the shared
// decode bandwidth. Handler threads decode first (they hold fetch
// priority for the same reason); application threads follow in ICOUNT
// order. Window-full handler dispatch triggers the deadlock-avoidance
// squash of Section 4.4.
func (m *Machine) dispatch() {
	budget := m.cfg.Width
	for _, ti := range m.dispatchOrder() {
		t := &m.threads[ti]
		for len(t.fetchBuf) > 0 {
			u := m.at(t.fetchBuf[0])
			exempt := u.instant ||
				(t.state == ctxException && m.cfg.Limit == LimitNoFetchBW)
			if budget <= 0 && !exempt {
				return
			}
			if u.availAt > m.now {
				break
			}
			if !m.windowFreeFor(t) {
				if t.state == ctxException {
					m.deadlockAvoidSquash(m.hctx(t.exc))
				}
				break
			}
			t.fetchBuf = t.fetchBuf[1:]
			when := m.now + uint64(m.cfg.DecodeStages+m.cfg.ScheduleStages)
			if u.instant {
				when = m.now
			}
			m.addToWindow(u, when)
			if !exempt {
				budget--
			}
			m.hot.dispatchInsts.Inc()
		}
	}
}

// dispatchOrder returns thread ids: handler contexts first, then
// application threads smallest in-flight count first.
func (m *Machine) dispatchOrder() []int {
	order := m.orderScratch[:0]
	for i := range m.threads {
		if m.threads[i].state == ctxException {
			//lint:allow hotpathlint append into capacity-retained scratch bounded by the context count
			order = append(order, i)
		}
	}
	// Application threads, smallest in-flight count first.
	start := len(order)
	for i := range m.threads {
		if m.threads[i].state == ctxRunning {
			//lint:allow hotpathlint same scratch; bounded by the context count
			order = append(order, i)
		}
	}
	app := order[start:]
	for i := 1; i < len(app); i++ {
		for j := i; j > 0 && m.threads[app[j]].icount < m.threads[app[j-1]].icount; j-- {
			app[j], app[j-1] = app[j-1], app[j]
		}
	}
	m.orderScratch = order
	return order
}

// deadlockAvoidSquash frees window space for a blocked handler by
// squashing the youngest post-exception instructions of the master
// thread — never the excepting instruction itself (Section 4.4).
func (m *Machine) deadlockAvoidSquash(ctx *handlerCtx) {
	if ctx == nil || ctx.masterSeq == 0 {
		return
	}
	mt := &m.threads[ctx.masterTid]
	// Per Section 4.4, whenever the handler has instructions ready to
	// enter a full window, instructions from the tail of the main
	// thread are squashed to make room — never the excepting
	// instruction itself. Free enough room for the handler
	// instructions still outside the window in one squash.
	h := &m.threads[ctx.tid]
	need := len(h.fetchBuf) + ctx.fetchBudget
	if need < 1 {
		need = 1
	}
	var victims []*uop
	for _, ui := range m.window {
		u := m.at(ui)
		if u.stage != stageWindow && u.stage != stageIssued && u.stage != stageDone {
			continue
		}
		if u.tid != ctx.masterTid || u.seq <= ctx.masterSeq {
			continue
		}
		if u.pal {
			// Never rewind fetch into the middle of a PAL handler:
			// the refetched tail would run under a stale context.
			continue
		}
		//lint:allow hotpathlint deadlock-avoidance squash is a rare recovery event, not per-instruction work
		victims = append(victims, u)
	}
	if len(victims) == 0 {
		// The master's tail may be occupied by a younger traditional
		// trap handler (PAL instructions are never rewind targets).
		// Squash that whole handler instance and refetch its
		// excepting instruction from scratch; the firstSeq rule in
		// squashFrom reclaims its context.
		// The trap's master was squashed and recycled at redirect; the
		// refetch target comes from the context snapshots.
		if tc := m.hctx(mt.trapCtx); tc != nil && !tc.dead && tc.masterSeq > ctx.masterSeq {
			m.Stats.Counter("window.deadlock.trapsquashes").Inc()
			m.debugf("deadlock-trapsquash tid=%d from=%d refetch=%#x", mt.id, tc.firstSeq, tc.masterPC)
			refetchPC := tc.masterPC
			hist, path, cp := tc.masterHist, tc.masterPath, tc.masterRAS
			m.squashFrom(mt, tc.firstSeq)
			mt.ghr, mt.path = hist, path
			m.ras[mt.id].Restore(cp)
			mt.pc = refetchPC
			mt.inPAL = false
			mt.haltedFetch, mt.fetchStalled = false, false
			mt.fetchBlockedUntil = m.now + 1
			return
		}
		m.Stats.Counter("window.deadlock.stalls").Inc()
		return
	}
	//lint:allow hotpathlint sort runs only on the rare deadlock-recovery event
	sort.Slice(victims, func(i, j int) bool { return victims[i].seq > victims[j].seq })
	if need > len(victims) {
		need = len(victims)
	}
	victim := victims[need-1]
	m.Stats.Counter("window.deadlock.squashes").Inc()
	m.debugf("deadlock-squash tid=%d from=%d victims=%d redirect=%#x pal=%v",
		mt.id, victim.seq, need, victim.pc, victim.pal)
	m.squashFrom(mt, victim.seq)
	// Fetch state rewinds to just before the victim.
	mt.ghr, mt.path = victim.histBefore, victim.pathBefore
	m.ras[mt.id].Restore(victim.rasCp)
	mt.pc = victim.pc
	mt.inPAL = victimMode(victim)
	mt.haltedFetch = false
	mt.fetchStalled = false
}

func victimMode(u *uop) bool { return u.pal }

// fuBudget tracks per-cycle functional-unit availability. Table 1's
// units are all fully pipelined, so each unit accepts one new
// operation per cycle.
type fuBudget struct {
	intALU, intMul, fpAdd, fpMul, fpDiv, mem int
	issue                                    int
}

func (m *Machine) newFUBudget() fuBudget {
	return fuBudget{
		intALU: m.cfg.IntALUs,
		intMul: m.cfg.IntMuls,
		fpAdd:  m.cfg.FPAdds,
		fpMul:  m.cfg.FPMuls,
		fpDiv:  m.cfg.FPDivs,
		mem:    m.cfg.MemPorts,
		issue:  m.cfg.Width,
	}
}

// slotFor reserves the FU and issue slot needed by op, reporting
// whether issue is possible this cycle.
func (b *fuBudget) slotFor(op isa.Op, exempt bool) bool {
	if !exempt && b.issue <= 0 {
		return false
	}
	var unit *int
	switch isa.ClassOf(op) {
	case isa.ClassIntALU, isa.ClassNop, isa.ClassBranch, isa.ClassJump,
		isa.ClassPriv, isa.ClassRfe, isa.ClassHardExc, isa.ClassHalt:
		unit = &b.intALU
	case isa.ClassIntMul, isa.ClassIntDiv:
		unit = &b.intMul
	case isa.ClassFPAdd:
		unit = &b.fpAdd
	case isa.ClassFPMul:
		unit = &b.fpMul
	case isa.ClassFPDiv:
		unit = &b.fpDiv
	case isa.ClassLoad, isa.ClassStore:
		unit = &b.mem
	default:
		unit = &b.intALU
	}
	if exempt {
		return true
	}
	if *unit <= 0 {
		return false
	}
	*unit--
	b.issue--
	return true
}

// issue selects ready instructions oldest-fetched-first and starts
// their execution. Hardware page walks claim memory ports first —
// the walker's page-table load "must be scheduled like other loads"
// (Section 5.1) and serves the oldest stalled instruction in the
// machine.
func (m *Machine) issue() {
	budget := m.newFUBudget()
	if m.cfg.Mech == MechHardware {
		m.startWalks(&budget)
	}
	ready := m.collectReady()
	m.hot.issueReady.Observe(int64(len(ready)))
	blocked := 0 // ready but denied an FU / issue slot this cycle
	for _, ui := range ready {
		u := m.at(ui)
		if u.stage != stageWindow {
			continue // squashed by a trap taken earlier this cycle
		}
		exempt := u.excFetch && m.cfg.Limit == LimitNoExecBW
		if !budget.slotFor(u.inst.Op, exempt) {
			blocked++
			continue
		}
		if !exempt {
			// Book the issue slot before executing: if execution
			// itself traps and squashes this uop, the squash path
			// moves the booking to the waste category.
			kind := obs.SlotUsefulApp
			if u.pal || u.excFetch {
				kind = obs.SlotHandler
			}
			m.Observ.Slots.Use(kind, 1)
			u.issueSlots++
		}
		m.executeUop(u)
	}
	m.Observ.Slots.EndCycle(m.issueResidual(blocked))
}

// issueResidual attributes this cycle's unused issue slots: ready
// instructions denied by structural limits or a populated window with
// nothing ready are window stalls; an empty window under a runnable
// context is a front-end bubble (pipeline refill after a squash);
// otherwise the machine has no work at all.
func (m *Machine) issueResidual(blocked int) obs.SlotKind {
	if blocked > 0 || m.windowCount > 0 {
		return obs.SlotWindowStall
	}
	for i := range m.threads {
		if m.threads[i].runnable() {
			return obs.SlotFetchBubble
		}
	}
	return obs.SlotIdleContext
}

// executeUop begins execution of u at the current cycle, computing
// its completion time. Memory operations translate through the DTLB
// here; a miss parks the instruction and invokes the exception
// architecture (Section 4.1's "returned to the instruction window and
// marked not ready").
func (m *Machine) executeUop(u *uop) {
	t := &m.threads[u.tid]
	u.issuedOnce = true
	u.issueAt = m.now
	m.hot.issueInsts.Inc()

	if u.inst.Op == isa.OpPopc && m.cfg.EmulatePopc && !u.pal &&
		(m.cfg.Mech == MechTraditional || m.cfg.Mech == MechMultithreaded) {
		// The hardware does not implement POPC: raise an
		// instruction-emulation exception (Section 6).
		m.onEmulationException(u)
		return
	}
	if u.isMem() {
		m.executeMem(t, u)
		return
	}
	u.stage = stageIssued
	u.doneAt = m.now + m.cfg.latencyOf(u.inst.Op)
}

func (m *Machine) executeMem(t *thread, u *uop) {
	ea := u.ea &^ (u.memBytes - 1)
	var pa uint64
	switch {
	case u.pal:
		pa = ea // PAL memory references are physical
	case m.cfg.Mech == MechPerfect:
		oraclePA, ok := t.as.Translate(ea)
		if !ok {
			// Wrong-path access to an unmapped page: a perfect TLB
			// still translates nothing; model as a dropped access
			// with load latency only.
			u.stage = stageIssued
			u.doneAt = m.now + m.cfg.latencyOf(u.inst.Op)
			return
		}
		pa = oraclePA
	default:
		vpn := ea >> vm.PageShift
		pfn, hit := m.dtlb.Lookup(t.as.ASN, vpn)
		if !hit {
			m.onDTLBMiss(u)
			return
		}
		pa = pfn<<vm.PageShift | ea&(vm.PageSize-1)
	}

	if m.trapUnalignedLoad(u) {
		// Unaligned integer load under software handling.
		m.pruneInflight(t)
		if hasOlderStores(t, u.seq) {
			// The handler reads memory directly; serialize behind
			// older (unretired) stores so it observes their data.
			// The instruction retries once they drain.
			return
		}
		m.onUnalignedException(u, pa|(u.ea&7))
		return
	}
	u.stage = stageIssued
	if u.isStore() {
		// Stores complete into the store buffer at store latency;
		// the cache access happens for its tag/bus side effects.
		m.hier.AccessData(m.now, pa, true)
		u.doneAt = m.now + m.cfg.Hier.StoreLat
		return
	}
	if st := m.uopAt(u.fwdStore); st != nil && st.stage != stageRetired {
		// Store-to-load forwarding from the speculative store buffer.
		u.doneAt = m.now + 1
		m.hot.memForwards.Inc()
		return
	}
	u.doneAt = m.hier.AccessData(m.now, pa, false)
	if m.cfg.TrapUnaligned && !u.pal && u.ea%u.memBytes != 0 {
		// Hardware-handled unaligned access: one extra cycle.
		u.doneAt++
	}
	if u.pal {
		m.Stats.Histogram("handler.pteload.lat").Observe(int64(u.doneAt - m.now))
		m.Stats.Histogram("handler.pteload.issuedelay").Observe(int64(m.now - u.availAt))
	}
}

// trapUnalignedLoad reports whether u is an integer load that must
// raise an unaligned-access exception under this configuration.
func (m *Machine) trapUnalignedLoad(u *uop) bool {
	if !m.cfg.TrapUnaligned || u.pal || !u.isLoad() || u.inst.Op == isa.OpLdf {
		return false
	}
	if m.cfg.Mech != MechTraditional && m.cfg.Mech != MechMultithreaded {
		return false
	}
	return u.ea%u.memBytes != 0
}

// hasOlderStores reports whether any store older than seq is still
// buffered (unretired) in the thread.
func hasOlderStores(t *thread, seq uint64) bool {
	for i := range t.ssb {
		if t.ssb[i].seq < seq {
			return true
		}
	}
	return false
}

// startWalks begins pending hardware page walks, consuming memory
// ports.
func (m *Machine) startWalks(budget *fuBudget) {
	for _, hi := range m.handlers {
		ctx := &m.hArena[hi]
		if ctx.dead || ctx.mech != MechHardware || ctx.walkStarted {
			continue
		}
		if budget.mem <= 0 {
			return
		}
		budget.mem--
		ctx.walkStarted = true
		mt := &m.threads[ctx.masterTid]
		var addr uint64
		switch {
		case mt.as.Org() == vm.PTTwoLevel && ctx.walkStage == 0:
			addr = mt.as.RootEntryAddr(ctx.faultVPN)
		case mt.as.Org() == vm.PTTwoLevel:
			root := m.phys.ReadU64(mt.as.RootEntryAddr(ctx.faultVPN))
			addr = vm.LeafPTEAddr(root, ctx.faultVPN)
		default:
			addr = mt.as.PTEAddr(ctx.faultVPN)
		}
		// One cycle of FSM overhead around each page-table load.
		ctx.walkDone = m.hier.AccessData(m.now, addr, false) + 1
		if ctx.walkStage == 0 {
			m.hot.walkerWalks.Inc()
		}
	}
}
