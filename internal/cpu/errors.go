package cpu

import "fmt"

// LivelockError reports that the retirement-progress watchdog fired:
// the machine went Config.NoProgressLimit cycles without retiring a
// single instruction while at least one context was still runnable.
// It carries a compact machine dump (per-thread fetch state and PC,
// window head and occupancy, pending misses and live handler
// contexts) so a wedged simulation is diagnosable from the error
// alone instead of burning cycles to MaxCycles.
type LivelockError struct {
	// Cycle is when the watchdog fired.
	Cycle uint64
	// LastProgress is the cycle of the last retirement.
	LastProgress uint64
	// Limit is the configured no-progress bound.
	Limit uint64
	// AppRetired counts application instructions retired before the
	// machine wedged.
	AppRetired uint64
	// Dump is the DumpState rendering at the moment the watchdog
	// fired.
	Dump string
}

func (e *LivelockError) Error() string {
	return fmt.Sprintf(
		"cpu: livelock: no instruction retired for %d cycles (limit %d) at cycle %d, %d app insts retired; machine state:\n%s",
		e.Cycle-e.LastProgress, e.Limit, e.Cycle, e.AppRetired, e.Dump)
}

// CancelledError reports that a run was aborted through the cancel
// channel (deadline or external cancellation) before completing.
type CancelledError struct {
	// Cycle is the simulated cycle at which the abort was observed.
	Cycle uint64
	// Cause, when non-nil, is the context error behind the
	// cancellation (context.DeadlineExceeded, context.Canceled).
	Cause error
}

func (e *CancelledError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("cpu: run cancelled at cycle %d: %v", e.Cycle, e.Cause)
	}
	return fmt.Sprintf("cpu: run cancelled at cycle %d", e.Cycle)
}

// Unwrap exposes the context error so errors.Is(err,
// context.DeadlineExceeded) works on a timed-out cell.
func (e *CancelledError) Unwrap() error { return e.Cause }
