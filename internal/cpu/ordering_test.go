package cpu

import (
	"testing"

	"mtexc/internal/isa"
	"mtexc/internal/isa/asm"
	"mtexc/internal/vm"
)

// TestSortedRegKeysAscending locks the AddProgram seeding order: the
// register walk must come out ascending no matter how the init map
// was populated.
func TestSortedRegKeysAscending(t *testing.T) {
	if got := sortedRegKeys(nil); len(got) != 0 {
		t.Errorf("nil map produced keys %v", got)
	}
	forward := map[uint8]uint64{}
	reverse := map[uint8]uint64{}
	regs := []uint8{31, 7, 0, 19, 2, 255, 8}
	for _, r := range regs {
		forward[r] = uint64(r) * 3
	}
	for i := len(regs) - 1; i >= 0; i-- {
		reverse[regs[i]] = uint64(regs[i]) * 3
	}
	a, b := sortedRegKeys(forward), sortedRegKeys(reverse)
	if len(a) != len(regs) || len(b) != len(regs) {
		t.Fatalf("key walks dropped entries: %v / %v", a, b)
	}
	for i := range a {
		if i > 0 && a[i-1] >= a[i] {
			t.Fatalf("walk not ascending: %v", a)
		}
		if a[i] != b[i] {
			t.Fatalf("insertion history changed the walk: %v vs %v", a, b)
		}
	}
}

// TestAddProgramInitOrderIndependent is the ordering regression test
// for the SoA load path: machines whose images carry the same init
// registers under different map insertion histories must simulate
// bit-identically — registers, memory result, and the full statistics
// set. Before the sorted walk this held only by the accident that
// register seeding had no observable side effects.
func TestAddProgramInitOrderIndependent(t *testing.T) {
	initRegs := []uint8{1, 3, 4, 5, 6, 7, 12, 20, 29}
	b := asm.NewBuilder()
	// r2 = sum of every init register, store, halt: each seeded value
	// is architecturally live in the final state.
	b.I(isa.OpLdi, 2, 0, 0)
	for _, r := range initRegs {
		b.R(isa.OpAdd, 2, 2, r)
	}
	b.LoadImm(10, testResultVA)
	b.I(isa.OpStq, 2, 10, 0)
	b.Emit(isa.Instruction{Op: isa.OpHalt})
	code, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}

	run := func(insertReversed bool) (isa.RegFile, uint64, string) {
		m := New(DefaultConfig())
		as := vm.NewAddressSpace(m.Phys(), 1, 1<<20)
		img := &vm.Image{Name: "init-order", Code: code, Space: as,
			InitInt: map[uint8]uint64{}}
		if err := img.Load(m.Phys()); err != nil {
			t.Fatal(err)
		}
		as.WriteU64(testResultVA, 0)
		if insertReversed {
			for i := len(initRegs) - 1; i >= 0; i-- {
				img.InitInt[initRegs[i]] = uint64(i+1) * 17
			}
		} else {
			for i, r := range initRegs {
				img.InitInt[r] = uint64(i+1) * 17
			}
		}
		tid, err := m.AddProgram(img)
		if err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		return m.ArchRegs(tid), as.ReadU64(testResultVA), m.Stats.String()
	}

	wantRegs, wantSum, wantStats := run(false)
	var expect uint64
	for i := range initRegs {
		expect += uint64(i+1) * 17
	}
	if wantSum != expect {
		t.Fatalf("stored sum %d, want %d — init registers not all seeded", wantSum, expect)
	}
	for trial := 0; trial < 4; trial++ {
		rev := trial%2 == 1
		gotRegs, gotSum, gotStats := run(rev)
		if gotRegs != wantRegs {
			t.Fatalf("trial %d (reversed=%v): architectural registers diverged", trial, rev)
		}
		if gotSum != wantSum {
			t.Fatalf("trial %d (reversed=%v): stored sum %d != %d", trial, rev, gotSum, wantSum)
		}
		if gotStats != wantStats {
			t.Fatalf("trial %d (reversed=%v): statistics diverged", trial, rev)
		}
	}
}
