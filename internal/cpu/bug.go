package cpu

import "fmt"

// InjectedBug selects a deliberately seeded defect in the exception
// machinery. The differential-fuzzing subsystem uses these to prove
// the oracle catches architecturally visible mechanism bugs end to
// end: a machine with a bug injected must diverge from the reference
// emulator, and the failing program must shrink to a small repro.
//
// Bugs live behind this hook — never behind Config — so fingerprinted
// experiment configurations cannot accidentally enable one. Set
// Machine.InjectBug after New and before Run.
type InjectedBug uint8

const (
	// BugNone runs the machine as built.
	BugNone InjectedBug = iota
	// BugResumeSkip makes the OS page-fault service resume execution
	// at the instruction after the faulting one, silently skipping its
	// re-execution — the classic off-by-one in the handler's resume-PC
	// bookkeeping. The skipped instruction's destination register (or
	// store) is lost, which only a reference-state comparison notices.
	BugResumeSkip
)

// String names the bug for CLI flags and reports.
func (b InjectedBug) String() string {
	switch b {
	case BugNone:
		return "none"
	case BugResumeSkip:
		return "resume-skip"
	}
	return fmt.Sprintf("bug(%d)", b)
}

// ParseInjectedBug resolves a bug name from the mtexc-fuzz -inject
// flag.
func ParseInjectedBug(name string) (InjectedBug, error) {
	switch name {
	case "", "none":
		return BugNone, nil
	case "resume-skip":
		return BugResumeSkip, nil
	}
	return BugNone, fmt.Errorf("cpu: unknown injected bug %q (have: none, resume-skip)", name)
}
