package cpu

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The speculative store buffer must make loads observe exactly the
// bytes a flat memory model would: base memory overlaid with all
// older buffered stores, oldest first.

type flatModel struct {
	mem map[uint64]byte
}

func newFlatModel(seed int64) *flatModel {
	f := &flatModel{mem: make(map[uint64]byte)}
	rng := rand.New(rand.NewSource(seed))
	for a := uint64(0); a < 64; a++ {
		f.mem[a] = byte(rng.Intn(256))
	}
	return f
}

func (f *flatModel) read(addr, size uint64) uint64 {
	var v uint64
	for b := uint64(0); b < size; b++ {
		v |= uint64(f.mem[addr+b]) << (b * 8)
	}
	return v
}

func (f *flatModel) write(addr, size, val uint64) {
	for b := uint64(0); b < size; b++ {
		f.mem[addr+b] = byte(val >> (b * 8))
	}
}

func TestSSBOverlayMatchesFlatModel(t *testing.T) {
	f := func(seed int64, ops []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		model := newFlatModel(seed)
		base := newFlatModel(seed) // untouched base memory
		th := &thread{id: 0}
		seq := uint64(1)

		for _, op := range ops {
			seq++
			size := uint64(4)
			if op&1 == 0 {
				size = 8
			}
			addr := uint64(rng.Intn(48)) &^ (size - 1)
			if op&2 == 0 {
				// Buffered store: goes to the SSB and the model, but
				// not to base memory (it is speculative).
				val := rng.Uint64()
				if size == 4 {
					val &= 0xffffffff
				}
				th.ssb = append(th.ssb, specStore{
					seq: seq, addr: addr, size: size, value: val,
				})
				model.write(addr, size, val)
			} else {
				// Load at the current sequence point: SSB overlay on
				// base memory must equal the model.
				got := th.overlaySSB(seq, addr, size, base.read(addr, size))
				want := model.read(addr, size)
				if got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSSBLookupFindsYoungestOlderStore(t *testing.T) {
	th := &thread{id: 0}
	mk := func(seq, addr uint64) {
		th.ssb = append(th.ssb, specStore{seq: seq, addr: addr, size: 8, value: seq})
	}
	mk(10, 0x100)
	mk(20, 0x100)
	mk(30, 0x200)

	// A load at seq 25 overlapping 0x100 forwards from seq 20.
	e, ok := th.lookupSSB(25, 0x100, 8)
	if !ok || e.seq != 20 {
		t.Fatalf("lookup = %+v, %v; want seq 20", e, ok)
	}
	// A load at seq 15 sees only the seq-10 store.
	e, ok = th.lookupSSB(15, 0x100, 8)
	if !ok || e.seq != 10 {
		t.Fatalf("lookup@15 = %+v, %v; want seq 10", e, ok)
	}
	// A load at seq 5 predates all stores.
	if _, ok := th.lookupSSB(5, 0x100, 8); ok {
		t.Fatal("load older than all stores forwarded")
	}
	// Partial overlap is still found.
	e, ok = th.lookupSSB(25, 0x104, 4)
	if !ok || e.seq != 20 {
		t.Fatalf("partial overlap = %+v, %v", e, ok)
	}
	// Disjoint address does not forward.
	if _, ok := th.lookupSSB(25, 0x300, 8); ok {
		t.Fatal("disjoint load forwarded")
	}
}

func TestSSBRemoveFrom(t *testing.T) {
	th := &thread{id: 0}
	for seq := uint64(1); seq <= 5; seq++ {
		th.ssb = append(th.ssb, specStore{seq: seq * 10, addr: seq, size: 8})
	}
	th.removeSSBFrom(30) // drops seqs 30, 40, 50
	if len(th.ssb) != 2 {
		t.Fatalf("ssb len %d after squash, want 2", len(th.ssb))
	}
	if th.ssb[1].seq != 20 {
		t.Errorf("tail seq %d, want 20", th.ssb[1].seq)
	}
	th.removeSSBFrom(0)
	if len(th.ssb) != 0 {
		t.Error("squash-all left entries")
	}
}

func TestSSBPopHead(t *testing.T) {
	th := &thread{id: 0}
	u1, u2 := &uop{idx: 1, seq: 1}, &uop{idx: 2, seq: 2}
	th.ssb = append(th.ssb, specStore{idx: u1.idx, seq: u1.seq}, specStore{idx: u2.idx, seq: u2.seq})
	if th.popSSBHead(u2) {
		t.Error("popped out of order")
	}
	if !th.popSSBHead(u1) || !th.popSSBHead(u2) {
		t.Error("in-order pops failed")
	}
	if th.popSSBHead(u1) {
		t.Error("pop from empty succeeded")
	}
}
