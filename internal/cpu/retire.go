package cpu

import (
	"mtexc/internal/isa"
	"mtexc/internal/obs"
)

// retire commits completed instructions in per-thread fetch order.
// Retirement bandwidth is unlimited (Section 5.1). A thread whose
// next-to-retire instruction has a linked multithreaded handler
// splices the handler's retirement in first (Figure 1c): the handler
// retires in its entirety after all pre-exception instructions and
// before the excepting instruction.
func (m *Machine) retire() {
	m.retireBudget = m.cfg.RetireWidth
	if m.retireBudget <= 0 {
		m.retireBudget = int(^uint(0) >> 1) // unlimited (Table 1)
	}
	for ti := range m.threads {
		t := &m.threads[ti]
		if t.state != ctxRunning {
			continue
		}
		for t.state == ctxRunning && m.retireBudget > 0 {
			m.pruneInflight(t)
			if len(t.inflight) == 0 {
				break
			}
			u := m.at(t.inflight[0])
			if ctx := m.pendingSplice(u); ctx != nil {
				m.drainHandler(ctx)
				if !ctx.rfeRetired {
					break // splice: wait for the handler to finish
				}
				continue // another handler may splice before u too
			}
			if u.stage != stageDone {
				break
			}
			m.retireUop(t, u)
		}
	}
	m.compactWindow()
}

// pendingSplice returns the oldest live multithreaded handler that
// must retire before u. Checking u.handlerBy alone is not enough: an
// instruction that takes a second exception after its first handler
// has filled (TLB miss then unaligned trap, or a re-miss after the
// fill was evicted) gets relinked to the new handler, but the spent
// first handler still owes its spliced retirement — otherwise it
// never drains, its context is never freed, and the machine cannot
// quiesce. The handler list is append-ordered, so the first match is
// the oldest obligation.
func (m *Machine) pendingSplice(u *uop) *handlerCtx {
	for _, hi := range m.handlers {
		ctx := &m.hArena[hi]
		if ctx.mech != MechMultithreaded || ctx.dead || ctx.rfeRetired {
			continue
		}
		if u.handlerBy == href(ctx) || m.uopAt(ctx.master) == u {
			return ctx
		}
	}
	return nil
}

// drainHandler retires as much of a handler thread as has completed,
// in its own fetch order.
func (m *Machine) drainHandler(ctx *handlerCtx) {
	h := &m.threads[ctx.tid]
	for m.retireBudget > 0 {
		m.pruneInflight(h)
		if len(h.inflight) == 0 {
			return
		}
		u := m.at(h.inflight[0])
		if u.stage != stageDone {
			return
		}
		m.retireUop(h, u)
		if ctx.rfeRetired || ctx.dead {
			return
		}
	}
}

// retireUop commits the head instruction of t.
func (m *Machine) retireUop(t *thread, u *uop) {
	u.stage = stageRetired
	m.releaseWindowSlot(u)
	t.icount--
	t.inflight = t.inflight[1:]
	m.retireBudget--
	m.lastProgress = m.now
	m.hot.retireInsts.Inc()
	m.hot.retireClass[isa.ClassOf(u.inst.Op)].Inc()
	if m.RetireHook != nil {
		//lint:allow hotpathlint nil-guarded observability hook; attached only by tests and the fault-injection oracle
		m.RetireHook(RetiredInst{
			Tid: u.tid, Seq: u.seq, PC: u.pc, Op: u.inst.Op,
			PAL: u.pal, HadMiss: u.hadMiss, Cycle: m.now,
		})
	}
	if m.TraceHook != nil {
		m.emitTrace(u, false)
	}

	switch {
	case u.isStore():
		m.commitStore(t, u)
	case u.inst.Op == isa.OpHalt:
		t.state = ctxHalted
	case u.inst.Op == isa.OpRfe:
		m.retireRFE(t, u)
	case u.inst.Op == isa.OpHardExc:
		m.osPageFaultService(t, u)
	}

	if u.span != nil {
		// The excepting instruction reached the splice point: close
		// its latency span.
		u.span.RetireAt = m.now
		m.Observ.Misses.Finish(u.span)
		u.span = nil
	}

	if u.pal {
		t.retiredPAL++
	} else {
		m.appRetired++
		t.retired++
		if u.hadMiss {
			m.Stats.Counter("dtlb.misses.retired").Inc()
			m.Stats.Histogram("miss.stall").Observe(int64(u.wokeAt - u.missAt))
		}
		if u.hadMiss && u.missMain && m.cfg.Mech == MechHardware {
			m.Stats.Counter("dtlb.fills.committed").Inc()
		}
	}
}

// commitStore performs the architectural memory write at retirement.
func (m *Machine) commitStore(t *thread, u *uop) {
	if !t.popSSBHead(u) {
		// The head entry must be this store; anything else means the
		// speculative store buffer lost sync with retirement.
		panic("cpu: speculative store buffer out of sync at store retire")
	}
	ea := u.ea &^ (u.memBytes - 1)
	pa, ok := t.as.Translate(ea)
	if !ok {
		return // unmapped commit cannot happen on a correct path
	}
	if u.memBytes == 4 {
		m.phys.WriteU32(pa, uint32(u.storeVal))
	} else {
		m.phys.WriteU64(pa, u.storeVal)
	}
}

// retireRFE finishes an exception handler: the speculative TLB fill
// becomes permanent and the handler instance is released. For a
// multithreaded handler this also frees the hardware context.
func (m *Machine) retireRFE(t *thread, u *uop) {
	ctx := m.hctx(u.palCtx)
	if ctx == nil || ctx.dead {
		return
	}
	m.dtlb.Commit(ctx.specTag)
	ctx.rfeRetired = true
	if ctx.detectAt > 0 && ctx.mech == MechMultithreaded {
		m.Stats.Histogram("handler.lifetime").Observe(int64(m.now - ctx.detectAt))
	}
	if ctx.span != nil {
		ctx.span.HandlerDoneAt = m.now
		if ctx.mech == MechTraditional {
			// The trap's master was squashed at redirect; the RFE is
			// the last observable event of a traditional miss.
			m.Observ.Misses.Finish(ctx.span)
		}
	}
	switch ctx.kind {
	case kindEmu:
		m.Stats.Counter("emu.committed").Inc()
	case kindUnaligned:
		m.Stats.Counter("unaligned.committed").Inc()
	default:
		m.Stats.Counter("dtlb.fills.committed").Inc()
	}
	m.reserved -= ctx.reserveLeft
	ctx.reserveLeft = 0
	switch ctx.mech {
	case MechTraditional:
		if t.trapCtx == href(ctx) {
			t.trapCtx = hRef{}
		}
	case MechMultithreaded:
		m.freeHandlerContext(t, ctx.kind)
	}
}

// osPageFaultService models the operating system servicing a page
// fault raised through the hard-exception path: map the page, install
// the translation, flush the thread and restart it at the excepting
// instruction after the service time.
func (m *Machine) osPageFaultService(t *thread, u *uop) {
	ctx := m.hctx(u.palCtx)
	if ctx == nil {
		// A HARDEXC that lost its context (its handler instance was
		// reclaimed) must still unwedge the thread: flush and resume
		// at the thread's recorded exception PC.
		m.Stats.Counter("os.orphan.hardexc").Inc()
		m.debugf("orphan-hardexc tid=%d pc=%#x resume=%#x", t.id, u.pc, t.priv[isa.PrExcPC])
		m.squashFrom(t, u.seq+1)
		t.inPAL = false
		t.pc = t.priv[isa.PrExcPC]
		t.haltedFetch, t.fetchStalled = false, false
		t.fetchBlockedUntil = m.now + 1
		return
	}
	m.Stats.Counter("os.pagefaults").Inc()
	m.Observ.Misses.Abort(ctx.span)
	m.debugf("os-fault tid=%d vpn=%#x resume=%#x", t.id, ctx.faultVPN, ctx.excPC)
	mt := &m.threads[ctx.masterTid]
	if pfn, err := mt.as.MapPage(ctx.faultVPN); err == nil {
		m.dtlb.Insert(mt.as.ASN, ctx.faultVPN, pfn, 0)
	}
	ctx.dead = true
	m.dtlb.SquashSpec(ctx.specTag)
	if t.trapCtx == href(ctx) {
		t.trapCtx = hRef{}
	}
	// Flush everything younger than the HARDEXC and restart at the
	// faulting instruction once the OS is done.
	m.squashFrom(t, u.seq+1)
	t.ghr, t.path = u.histBefore, u.pathBefore
	m.ras[t.id].Restore(u.rasCp)
	t.inPAL = false
	t.pc = ctx.excPC
	if m.InjectBug == BugResumeSkip {
		// Seeded defect: resume past the faulting instruction instead
		// of at it, so it never re-executes (see cpu.InjectedBug).
		t.pc = ctx.excPC + 4
	}
	t.haltedFetch, t.fetchStalled = false, false
	t.fetchBlockedUntil = m.now + m.cfg.OSFaultCycles
}

// squashFrom squashes every in-flight instruction of t with sequence
// number >= from, undoing their speculative register writes youngest
// first and rebuilding the fetch-order writer tables from the
// survivors.
func (m *Machine) squashFrom(t *thread, from uint64) {
	idx := len(t.inflight)
	for idx > 0 && m.at(t.inflight[idx-1]).seq >= from {
		idx--
	}
	if idx == len(t.inflight) {
		m.finishSquash(t, from)
		return
	}
	for i := len(t.inflight) - 1; i >= idx; i-- {
		m.squashUop(t, m.at(t.inflight[i]))
	}
	t.inflight = t.inflight[:idx]
	m.finishSquash(t, from)
}

func (m *Machine) finishSquash(t *thread, from uint64) {
	// The store buffer is stripped before the fetch buffer so a
	// squashed store's storage (it can sit in both) is never released
	// while the SSB still points at it.
	t.removeSSBFrom(from)

	// Drop squashed entries from the fetch buffer and recycle their
	// storage: a squashed fetch-buffer entry never entered the window,
	// so compactWindow would never see it.
	fb := t.fetchBuf[:0]
	for _, ui := range t.fetchBuf {
		u := m.at(ui)
		if u.stage != stageSquashed {
			//lint:allow hotpathlint in-place compaction into the fetch buffer's own backing array; never grows
			fb = append(fb, ui)
		} else {
			m.releaseUop(u)
		}
	}
	t.fetchBuf = fb

	// Rebuild last-writer tables from the surviving instructions.
	t.lwInt = [32]depRef{}
	t.lwFP = [32]depRef{}
	t.lwShadow = [32]depRef{}
	t.lastTLBWR = depRef{}
	for _, ui := range t.inflight {
		u := m.at(ui)
		if u.slotKind != slotNone {
			switch u.destKind {
			case regInt:
				if u.pal && !u.excFetch && u.inst.Op != isa.OpWrtDest {
					t.lwShadow[u.destReg] = ref(u)
				} else {
					t.lwInt[u.destReg] = ref(u)
				}
			case regFP:
				t.lwFP[u.destReg] = ref(u)
			}
		}
		if u.inst.Op == isa.OpTlbwr {
			t.lastTLBWR = ref(u)
		}
	}

	// A traditional trap handler whose first instruction fell inside
	// the squashed range dies with it.
	if ctx := m.hctx(t.trapCtx); ctx != nil && !ctx.dead && from <= ctx.firstSeq {
		m.debugf("trapctx-killed tid=%d from=%d firstSeq=%d", t.id, from, ctx.firstSeq)
		ctx.dead = true
		m.dtlb.SquashSpec(ctx.specTag)
		m.Observ.Misses.Abort(ctx.span)
		t.trapCtx = hRef{}
	}
	m.compactWindow()
}

// squashUop removes one instruction from the machine.
func (m *Machine) squashUop(t *thread, u *uop) {
	if u.stage == stageSquashed || u.stage == stageRetired {
		return
	}
	inWindow := u.stage == stageWindow || u.stage == stageIssued || u.stage == stageDone
	u.stage = stageSquashed
	if inWindow {
		m.releaseWindowSlot(u)
	}
	t.icount--
	if p := m.slotPtr(u); p != nil {
		*p = u.oldVal
	}
	if u.issueSlots > 0 {
		from := obs.SlotUsefulApp
		if u.pal || u.excFetch {
			from = obs.SlotHandler
		}
		m.Observ.Slots.Move(from, obs.SlotSquashWaste, uint64(u.issueSlots))
		u.issueSlots = 0
	}
	m.hot.squashInsts.Inc()
	if m.TraceHook != nil {
		m.emitTrace(u, true)
	}
	if u.excFetch {
		if exc := m.hctx(t.exc); exc != nil && !exc.dead {
			exc.fetchBudget++
		}
	}
	if u.handlerBy != (hRef{}) {
		m.unlinkSquashedMiss(u)
	}
}

// unlinkSquashedMiss detaches a squashed excepting instruction from
// its handler. Squashing the master reclaims the whole handler
// (Section 4.1: squash events check exception sequence numbers to
// reclaim exception threads).
func (m *Machine) unlinkSquashedMiss(u *uop) {
	ctx := m.hctx(u.handlerBy)
	u.handlerBy = hRef{}
	if ctx == nil || ctx.dead {
		return
	}
	if m.uopAt(ctx.master) == u {
		switch ctx.mech {
		case MechMultithreaded:
			m.Stats.Counter("handler.reclaimed").Inc()
			m.killHandler(ctx)
		case MechHardware:
			m.Stats.Counter("walker.cancelled").Inc()
			ctx.dead = true
			m.Observ.Misses.Abort(ctx.span)
		}
		return
	}
	for i, wi := range ctx.waiters {
		if wi == u.idx {
			//lint:allow hotpathlint in-place element removal; reuses the waiter slice's backing array
			ctx.waiters = append(ctx.waiters[:i], ctx.waiters[i+1:]...)
			break
		}
	}
}
