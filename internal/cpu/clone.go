package cpu

import (
	"mtexc/internal/bpred"
	"mtexc/internal/obs"
	"mtexc/internal/stats"
	"mtexc/internal/vm"
)

// Clone returns a deep copy of the machine, safe to run independently
// of the original: every piece of mutable state — physical memory,
// caches, TLB, predictors, the uop and handler-context arenas, the
// per-thread queues and register files, statistics and observability
// collectors — is duplicated, and both copies produce identical
// futures from the shared present.
//
// The struct-of-arrays layout is what makes this a mostly flat copy:
// pipeline structures cross-reference each other by arena handle
// (uopIdx/hIdx), which stay valid against the copied arenas without
// translation. The only pointers that need fixing up are the few that
// escape that discipline — address spaces (rebound to the cloned
// physical memory), live miss spans, and the sampler's reader
// closures.
//
// Immutable structure is shared: program images (code is fixed after
// Load; mutable program state lives in the address space and physical
// memory, which are cloned), the generated handlers and the PAL
// image. Run-control attachments — RetireHook, TraceHook, DebugHook,
// the cancel channel, the probe — are NOT carried over; the clone
// starts with none, and the caller attaches its own.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		cfg:       m.cfg,
		phys:      m.phys.Clone(),
		hier:      m.hier.Clone(),
		dtlb:      m.dtlb.Clone(),
		hand:      m.hand,
		pal:       m.pal,
		physMark:  m.physMark,
		dir:       bpred.CloneDirPredictor(m.dir),
		ind:       m.ind.Clone(),
		emuHand:   m.emuHand,
		unalpHand: m.unalpHand,

		windowCount: m.windowCount,
		reserved:    m.reserved,

		rrCursor:     m.rrCursor,
		retireBudget: m.retireBudget,

		now:          m.now,
		seqCounter:   m.seqCounter,
		appRetired:   m.appRetired,
		lastProgress: m.lastProgress,

		Stats: m.Stats.Clone(),

		InjectBug:  m.InjectBug,
		fault:      m.fault,
		faultArmed: m.faultArmed,
		faultRec:   m.faultRec,
	}

	// Arenas and the machine-owned handle lists. Handles carry over
	// unchanged; only the backing storage is duplicated.
	c.uops = append([]uop(nil), m.uops...)
	c.uopFree = append([]uopIdx(nil), m.uopFree...)
	c.hArena = append([]handlerCtx(nil), m.hArena...)
	c.hFree = append([]hIdx(nil), m.hFree...)
	c.window = append([]uopIdx(nil), m.window...)
	c.handlers = append([]hIdx(nil), m.handlers...)
	c.hZombies = append([]hIdx(nil), m.hZombies...)
	for i := range c.hArena {
		c.hArena[i].waiters = append([]uopIdx(nil), c.hArena[i].waiters...)
	}

	// Live miss spans are the one pointer the arenas hold: a span is
	// shared between a handler context and its master uop, so clone
	// each distinct span once and retarget every reference.
	spans := make(map[*obs.MissSpan]*obs.MissSpan)
	cloneSpan := func(s *obs.MissSpan) *obs.MissSpan {
		if s == nil {
			return nil
		}
		if cs, ok := spans[s]; ok {
			return cs
		}
		cs := new(obs.MissSpan)
		*cs = *s
		spans[s] = cs
		return cs
	}
	for i := range c.uops {
		c.uops[i].span = cloneSpan(c.uops[i].span)
	}
	for i := range c.hArena {
		c.hArena[i].span = cloneSpan(c.hArena[i].span)
	}

	// Threads: per-thread queues are deep-copied; the image is shared
	// (immutable after Load); the address space is cloned against the
	// cloned physical memory, deduplicated in case contexts share one.
	c.threads = append([]thread(nil), m.threads...)
	asClones := make(map[*vm.AddressSpace]*vm.AddressSpace)
	for i := range c.threads {
		t := &c.threads[i]
		t.fetchBuf = append([]uopIdx(nil), t.fetchBuf...)
		t.inflight = append([]uopIdx(nil), t.inflight...)
		t.ssb = append([]specStore(nil), t.ssb...)
		if t.as != nil {
			ca, ok := asClones[t.as]
			if !ok {
				ca = t.as.CloneInto(c.phys)
				asClones[t.as] = ca
			}
			t.as = ca
		}
	}
	c.ras = make([]*bpred.RAS, len(m.ras))
	for i, r := range m.ras {
		c.ras[i] = r.Clone()
	}

	// Observability: the slot ledger and miss recorder copy over; the
	// sampler's sources are closures over the original machine, so a
	// copied sampler rebinds them onto the clone by series name.
	c.Observ = &obs.Observations{
		Slots:  m.Observ.Slots.Clone(),
		Misses: m.Observ.Misses.CloneInto(c.Stats),
	}
	if m.Observ.Sampler != nil {
		c.Observ.Sampler = m.Observ.Sampler.Clone(c.samplerSource)
	}
	c.bindHotStats()
	return c
}

// Reset returns the machine to its post-New state — no programs
// attached, cycle zero, empty pipeline, fresh statistics — while
// reusing the storage construction paid for: the PAL image and
// generated handlers survive in physical memory (the allocator
// rewinds to the construction mark, dropping program frames), and the
// predictor tables, cache arrays, TLB entries and arenas are cleared
// in place rather than reallocated. It is the cheap way to run many
// short simulations on one configuration; Clone is the way to fork a
// run in progress.
//
// Like a fresh machine, a reset one has no hooks, no cancel channel,
// no probe, no armed fault plan and no injected bug.
func (m *Machine) Reset() {
	m.phys.ResetTo(m.physMark)
	m.dtlb.Reset()
	m.hier.Reset()
	bpred.ResetDirPredictor(m.dir)
	m.ind.Reset()
	for _, r := range m.ras {
		r.Reset()
	}

	m.uops = m.uops[:1]
	m.uops[0] = uop{gen: 1}
	m.uopFree = m.uopFree[:0]
	m.hArena = m.hArena[:1]
	m.hArena[0] = handlerCtx{gen: 1}
	m.hFree = m.hFree[:0]
	for i := range m.threads {
		m.threads[i] = thread{id: i, state: ctxIdle}
	}
	m.window = m.window[:0]
	m.windowCount = 0
	m.reserved = 0
	m.handlers = m.handlers[:0]
	m.hZombies = m.hZombies[:0]
	m.rrCursor = 0
	m.retireBudget = 0
	m.now = 0
	m.seqCounter = 0
	m.appRetired = 0
	m.lastProgress = 0
	m.readyScratch = m.readyScratch[:0]
	m.doneScratch = m.doneScratch[:0]
	m.orderScratch = m.orderScratch[:0]

	m.cancel = nil
	m.probe = nil
	m.RetireHook = nil
	m.TraceHook = nil
	m.DebugHook = nil
	m.InjectBug = BugNone
	m.fault = FaultPlan{}
	m.faultArmed = false
	m.faultRec = FaultRecord{}

	m.Stats = stats.NewSet()
	m.Observ = &obs.Observations{
		Slots:  obs.NewSlotAccount(m.cfg.Width),
		Misses: obs.NewMissRecorder(m.Stats, m.cfg.SpanKeep),
	}
	m.Observ.Sampler = nil
	if m.cfg.SampleInterval > 0 {
		m.attachSampler(m.cfg.SampleInterval)
	}
	m.bindHotStats()
}
