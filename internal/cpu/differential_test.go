package cpu

import (
	"fmt"
	"testing"

	"mtexc/internal/diffsim/gen"
	"mtexc/internal/isa"
	"mtexc/internal/vm"
)

// The differential property: for any program, every exception
// architecture must compute the same architectural result — the
// mechanisms differ only in timing. Random programs with loops,
// data-dependent branches, stores, loads across many pages, and
// calls come from the shared generator (internal/diffsim/gen) and
// run under all four mechanisms (plus quick-start); their final
// register files, memory images and result words must agree.
//
// These tests compare mechanism against mechanism; the
// reference-emulator oracle lives in internal/diffsim, which also
// fuzzes the full configuration grid.

// archSig is one run's complete architectural outcome: the three
// result words the program stores, the final register file of the
// application thread, and a hash of all mapped memory.
type archSig struct {
	words [3]uint64
	regs  isa.RegFile
	mem   uint64
}

// perfectCompatible keeps generated programs on ground every
// mechanism can share: no unmapped pages (a perfect TLB silently
// drops accesses that software mechanisms page-fault and map) and no
// unaligned accesses (their architecture depends on TrapUnaligned).
var perfectCompatible = gen.Limits{MaxPages: 128, NoFault: true, NoUnaligned: true}

// runSignature executes the program under a mechanism and returns its
// architectural signature.
func runSignature(t *testing.T, p *gen.Program, mech Mechanism, contexts int, quick bool) archSig {
	return runSignatureOrg(t, p, mech, contexts, quick, vm.PTLinear)
}

func runSignatureOrg(t *testing.T, p *gen.Program, mech Mechanism, contexts int, quick bool, org vm.PTOrg) archSig {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mech = mech
	cfg.Contexts = contexts
	cfg.QuickStart = quick
	cfg.CheckInvariants = true
	cfg.PageTable = org
	// POPC is software-emulated wherever a software mechanism runs,
	// exercising mixed TLB + emulation exception traffic.
	cfg.EmulatePopc = mech == MechTraditional || mech == MechMultithreaded
	cfg.MaxInsts = 5_000_000
	cfg.MaxCycles = 20_000_000
	m := New(cfg)
	img, err := p.BuildImage(m.Phys(), 1, org)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := m.AddProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	if res.Cycles >= cfg.MaxCycles {
		t.Fatalf("mech %v: did not halt within %d cycles", mech, cfg.MaxCycles)
	}
	if !m.ThreadHalted(tid) {
		t.Fatalf("mech %v: application thread not halted", mech)
	}
	return archSig{
		words: [3]uint64{
			img.Space.ReadU64(gen.ResultVA),
			img.Space.ReadU64(gen.ResultVA + 8),
			img.Space.ReadU64(gen.ResultVA + 16),
		},
		regs: m.ArchRegs(tid),
		mem:  img.Space.ContentHash(),
	}
}

// checkSig compares complete architectural signatures, diagnosing
// which layer disagreed.
func checkSig(t *testing.T, label string, got, want archSig) {
	t.Helper()
	if got.words != want.words {
		t.Errorf("%s: result words %#x != %#x", label, got.words, want.words)
	}
	if got.regs != want.regs {
		t.Errorf("%s: architectural register files differ", label)
	}
	if got.mem != want.mem {
		t.Errorf("%s: memory hash %#x != %#x", label, got.mem, want.mem)
	}
}

func TestDifferentialMechanismEquivalence(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		p := gen.Generate(int64(1000+trial), perfectCompatible)
		want := runSignature(t, p, MechPerfect, 1, false)
		configs := []struct {
			name     string
			mech     Mechanism
			contexts int
			quick    bool
		}{
			{"traditional", MechTraditional, 1, false},
			{"multithreaded(1)", MechMultithreaded, 2, false},
			{"multithreaded(3)", MechMultithreaded, 4, false},
			{"quickstart", MechMultithreaded, 2, true},
			{"hardware", MechHardware, 1, false},
		}
		for _, c := range configs {
			got := runSignature(t, p, c.mech, c.contexts, c.quick)
			checkSig(t, c.name, got, want)
		}
	}
}

// TestDifferentialTwoLevel: the equivalence holds over a two-level
// page table as well.
func TestDifferentialTwoLevel(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		p := gen.Generate(int64(7000+trial), perfectCompatible)
		want := runSignatureOrg(t, p, MechPerfect, 1, false, vm.PTTwoLevel)
		for _, mech := range []Mechanism{MechTraditional, MechMultithreaded, MechHardware} {
			contexts := 1
			if mech == MechMultithreaded {
				contexts = 2
			}
			got := runSignatureOrg(t, p, mech, contexts, false, vm.PTTwoLevel)
			checkSig(t, mech.String()+"/twolevel", got, want)
		}
	}
}

// TestDifferentialLimitStudies: the Table 3 limit studies change
// timing only, never results.
func TestDifferentialLimitStudies(t *testing.T) {
	p := gen.Generate(4242, perfectCompatible)
	base := runSignature(t, p, MechPerfect, 1, false)
	for _, limit := range []LimitStudy{LimitNoExecBW, LimitNoWindow, LimitNoFetchBW, LimitInstantFetch} {
		cfg := DefaultConfig()
		cfg.Mech = MechMultithreaded
		cfg.Contexts = 2
		cfg.Limit = limit
		cfg.CheckInvariants = true
		cfg.MaxInsts = 5_000_000
		cfg.MaxCycles = 20_000_000
		m := New(cfg)
		img, err := p.BuildImage(m.Phys(), 1, vm.PTLinear)
		if err != nil {
			t.Fatal(err)
		}
		tid, err := m.AddProgram(img)
		if err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		got := archSig{
			words: [3]uint64{
				img.Space.ReadU64(gen.ResultVA),
				img.Space.ReadU64(gen.ResultVA + 8),
				img.Space.ReadU64(gen.ResultVA + 16),
			},
			regs: m.ArchRegs(tid),
			mem:  img.Space.ContentHash(),
		}
		checkSig(t, fmt.Sprintf("limit %d", limit), got, base)
	}
}

// TestDifferentialMachineShapes: architectural results are invariant
// across machine widths and pipeline depths too — the paper's Figure
// 2/3 sweeps must not change what programs compute.
func TestDifferentialMachineShapes(t *testing.T) {
	p := gen.Generate(31337, perfectCompatible)
	var want archSig
	first := true
	for _, shape := range []struct{ width, window, depth int }{
		{8, 128, 7}, {2, 32, 7}, {4, 64, 7}, {8, 128, 3}, {8, 128, 11},
	} {
		cfg := DefaultConfig().WithWidth(shape.width, shape.window).WithPipeDepth(shape.depth)
		cfg.Mech = MechMultithreaded
		cfg.Contexts = 2
		cfg.CheckInvariants = true
		cfg.EmulatePopc = true
		cfg.MaxInsts = 5_000_000
		cfg.MaxCycles = 20_000_000
		m := New(cfg)
		img, err := p.BuildImage(m.Phys(), 1, vm.PTLinear)
		if err != nil {
			t.Fatal(err)
		}
		tid, err := m.AddProgram(img)
		if err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		got := archSig{
			words: [3]uint64{
				img.Space.ReadU64(gen.ResultVA),
				img.Space.ReadU64(gen.ResultVA + 8),
				img.Space.ReadU64(gen.ResultVA + 16),
			},
			regs: m.ArchRegs(tid),
			mem:  img.Space.ContentHash(),
		}
		if first {
			want, first = got, false
			continue
		}
		checkSig(t, fmt.Sprintf("shape %+v", shape), got, want)
	}
}
