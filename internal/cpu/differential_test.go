package cpu

import (
	"fmt"
	"math/rand"
	"testing"

	"mtexc/internal/isa"
	"mtexc/internal/isa/asm"
	"mtexc/internal/vm"
)

// The differential property: for any program, every exception
// architecture must compute the same architectural result — the
// mechanisms differ only in timing. Random programs with loops,
// data-dependent branches, stores, loads across many pages, and
// calls are generated and run under all four mechanisms (plus
// quick-start); their final memory signatures must agree.

// randProgram emits a random but terminating program: a fixed number
// of outer iterations over a randomized body, accumulating into r3,
// ending by storing r3 and halting.
func randProgram(rng *rand.Rand, pages int) []isa.Instruction {
	b := asm.NewBuilder()
	const (
		dataVA   = uint64(0x1000_0000)
		resultVA = uint64(0x2000_0000)
	)
	b.LoadImm(10, dataVA)
	b.LoadImm(11, uint64(pages))
	b.I(isa.OpLdi, 12, 0, 1)
	b.I(isa.OpSlli, 12, 12, int64(vm.PageShift))
	b.LoadImm(1, uint64(60+rng.Intn(60))) // outer trip count

	hasCall := rng.Intn(2) == 0
	b.Label("outer")

	// Random body: 4-10 fragments.
	nFrag := 4 + rng.Intn(7)
	for i := 0; i < nFrag; i++ {
		switch rng.Intn(8) {
		case 0: // arithmetic on accumulators
			b.I(isa.OpAddi, uint8(4+rng.Intn(4)), uint8(4+rng.Intn(4)), int64(rng.Intn(100)))
		case 1: // page-strided load (TLB pressure)
			b.I(isa.OpLdq, 8, 10, 0)
			b.R(isa.OpAdd, 3, 3, 8)
			b.R(isa.OpAdd, 10, 10, 12)
			// wrap pointer based on loop counter parity
			lbl := fmt.Sprintf("wrap%d", i)
			b.I(isa.OpAndi, 9, 1, 15)
			b.Branch(isa.OpBne, 9, lbl)
			b.LoadImm(10, dataVA)
			b.Label(lbl)
		case 2: // store then load back (forwarding)
			b.I(isa.OpStq, 3, 10, 8)
			b.I(isa.OpLdq, 7, 10, 8)
			b.R(isa.OpXor, 3, 3, 7)
		case 3: // data-dependent branch
			lbl := fmt.Sprintf("dd%d", i)
			b.I(isa.OpAndi, 9, 3, 1)
			b.Branch(isa.OpBeq, 9, lbl)
			b.I(isa.OpAddi, 3, 3, 13)
			b.Label(lbl)
		case 4: // multiply/divide
			b.I(isa.OpAddi, 6, 3, 7)
			b.R(isa.OpMul, 5, 5, 6)
			b.R(isa.OpAdd, 3, 3, 5)
		case 5: // FP round trip
			b.R(isa.OpCvtif, 1, 3, 0)
			b.R(isa.OpFadd, 1, 1, 1)
			b.R(isa.OpCvtfi, 7, 1, 0)
			b.R(isa.OpXor, 3, 3, 7)
		case 6: // call a leaf
			if hasCall {
				b.Jump(isa.OpJal, "leaf")
			} else {
				b.I(isa.OpAddi, 3, 3, 1)
			}
		case 7: // population count (emulated under software mechanisms)
			b.R(isa.OpPopc, 7, 3, 0)
			b.R(isa.OpAdd, 3, 3, 7)
		}
	}
	b.I(isa.OpAddi, 1, 1, -1)
	b.Branch(isa.OpBne, 1, "outer")
	b.LoadImm(13, resultVA)
	b.I(isa.OpStq, 3, 13, 0)
	b.I(isa.OpStq, 5, 13, 8)
	b.I(isa.OpStq, 6, 13, 16)
	b.Emit(isa.Instruction{Op: isa.OpHalt})
	if hasCall {
		b.Label("leaf")
		b.I(isa.OpAddi, 3, 3, 3)
		b.Emit(isa.Instruction{Op: isa.OpRet})
	}
	return b.MustFinish()
}

// runSignature executes code under a mechanism and returns the final
// result words.
func runSignature(t *testing.T, code []isa.Instruction, pages int, mech Mechanism, contexts int, quick bool) [3]uint64 {
	return runSignatureOrg(t, code, pages, mech, contexts, quick, vm.PTLinear)
}

func runSignatureOrg(t *testing.T, code []isa.Instruction, pages int, mech Mechanism, contexts int, quick bool, org vm.PTOrg) [3]uint64 {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Mech = mech
	cfg.Contexts = contexts
	cfg.QuickStart = quick
	cfg.CheckInvariants = true
	cfg.PageTable = org
	// POPC is software-emulated wherever a software mechanism runs,
	// exercising mixed TLB + emulation exception traffic.
	cfg.EmulatePopc = mech == MechTraditional || mech == MechMultithreaded
	cfg.MaxInsts = 5_000_000
	cfg.MaxCycles = 20_000_000
	m := New(cfg)
	as := vm.NewAddressSpace(m.Phys(), 1, 1<<20)
	if org == vm.PTTwoLevel {
		as = vm.NewAddressSpaceTwoLevel(m.Phys(), 1, 1<<20)
	}
	img := &vm.Image{Name: "rand", Code: code, Space: as}
	if err := img.Load(m.Phys()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < pages; i++ {
		as.WriteU64(0x1000_0000+uint64(i)*vm.PageSize, uint64(i*37+11))
	}
	as.WriteU64(0x2000_0000, 0)
	if _, err := m.AddProgram(img); err != nil {
		t.Fatal(err)
	}
	res := mustRun(t, m)
	if res.Cycles >= cfg.MaxCycles {
		t.Fatalf("mech %v: did not halt within %d cycles", mech, cfg.MaxCycles)
	}
	return [3]uint64{
		as.ReadU64(0x2000_0000),
		as.ReadU64(0x2000_0008),
		as.ReadU64(0x2000_0010),
	}
}

// TestDifferentialTwoLevel: the equivalence holds over a two-level
// page table as well.
func TestDifferentialTwoLevel(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		pages := 96 + rng.Intn(128)
		code := randProgram(rng, pages)
		want := runSignatureOrg(t, code, pages, MechPerfect, 1, false, vm.PTTwoLevel)
		for _, mech := range []Mechanism{MechTraditional, MechMultithreaded, MechHardware} {
			contexts := 1
			if mech == MechMultithreaded {
				contexts = 2
			}
			got := runSignatureOrg(t, code, pages, mech, contexts, false, vm.PTTwoLevel)
			if got != want {
				t.Errorf("trial %d: %v over two-level PT: %#x != %#x", trial, mech, got, want)
			}
		}
	}
}

func TestDifferentialMechanismEquivalence(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		pages := 96 + rng.Intn(128)
		code := randProgram(rng, pages)

		want := runSignature(t, code, pages, MechPerfect, 1, false)
		configs := []struct {
			name     string
			mech     Mechanism
			contexts int
			quick    bool
		}{
			{"traditional", MechTraditional, 1, false},
			{"multithreaded(1)", MechMultithreaded, 2, false},
			{"multithreaded(3)", MechMultithreaded, 4, false},
			{"quickstart", MechMultithreaded, 2, true},
			{"hardware", MechHardware, 1, false},
		}
		for _, c := range configs {
			got := runSignature(t, code, pages, c.mech, c.contexts, c.quick)
			if got != want {
				t.Errorf("trial %d: %s signature %#x != perfect %#x",
					trial, c.name, got, want)
			}
		}
	}
}

// TestDifferentialLimitStudies: the Table 3 limit studies change
// timing only, never results.
func TestDifferentialLimitStudies(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	pages := 128
	code := randProgram(rng, pages)
	base := runSignature(t, code, pages, MechPerfect, 1, false)
	for _, limit := range []LimitStudy{LimitNoExecBW, LimitNoWindow, LimitNoFetchBW, LimitInstantFetch} {
		cfg := DefaultConfig()
		cfg.Mech = MechMultithreaded
		cfg.Contexts = 2
		cfg.Limit = limit
		cfg.CheckInvariants = true
		cfg.MaxInsts = 5_000_000
		cfg.MaxCycles = 20_000_000
		m := New(cfg)
		as := vm.NewAddressSpace(m.Phys(), 1, 1<<20)
		img := &vm.Image{Name: "rand", Code: code, Space: as}
		if err := img.Load(m.Phys()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			as.WriteU64(0x1000_0000+uint64(i)*vm.PageSize, uint64(i*37+11))
		}
		if _, err := m.AddProgram(img); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		got := [3]uint64{
			as.ReadU64(0x2000_0000),
			as.ReadU64(0x2000_0008),
			as.ReadU64(0x2000_0010),
		}
		if got != base {
			t.Errorf("limit %d: signature %#x != perfect %#x", limit, got, base)
		}
	}
}

// TestDifferentialMachineShapes: architectural results are invariant
// across machine widths and pipeline depths too — the paper's Figure
// 2/3 sweeps must not change what programs compute.
func TestDifferentialMachineShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	pages := 128
	code := randProgram(rng, pages)

	var want [3]uint64
	first := true
	for _, shape := range []struct{ width, window, depth int }{
		{8, 128, 7}, {2, 32, 7}, {4, 64, 7}, {8, 128, 3}, {8, 128, 11},
	} {
		cfg := DefaultConfig().WithWidth(shape.width, shape.window).WithPipeDepth(shape.depth)
		cfg.Mech = MechMultithreaded
		cfg.Contexts = 2
		cfg.CheckInvariants = true
		cfg.EmulatePopc = true
		cfg.MaxInsts = 5_000_000
		cfg.MaxCycles = 20_000_000
		m := New(cfg)
		as := vm.NewAddressSpace(m.Phys(), 1, 1<<20)
		img := &vm.Image{Name: "rand", Code: code, Space: as}
		if err := img.Load(m.Phys()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pages; i++ {
			as.WriteU64(0x1000_0000+uint64(i)*vm.PageSize, uint64(i*37+11))
		}
		if _, err := m.AddProgram(img); err != nil {
			t.Fatal(err)
		}
		mustRun(t, m)
		got := [3]uint64{
			as.ReadU64(0x2000_0000),
			as.ReadU64(0x2000_0008),
			as.ReadU64(0x2000_0010),
		}
		if first {
			want, first = got, false
			continue
		}
		if got != want {
			t.Errorf("shape %+v: signature %#x != %#x", shape, got, want)
		}
	}
}
