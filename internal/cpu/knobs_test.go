package cpu

import (
	"testing"

	"mtexc/internal/isa/asm"
	"mtexc/internal/vm"
)

// TestFetchRoundRobinRuns: the round-robin chooser completes a
// two-thread workload correctly and touches both threads.
func TestFetchRoundRobinRuns(t *testing.T) {
	cfg := testConfig()
	cfg.Mech = MechMultithreaded
	cfg.Contexts = 3
	cfg.FetchRoundRobin = true
	m := New(cfg)

	results := make([]*vm.AddressSpace, 2)
	for i := range results {
		as, err := addSumProgram(m, uint8(i+1), 300+int64(i)*100)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = as
	}
	mustRun(t, m)
	if got := results[0].ReadU64(testResultVA); got != 300*301/2 {
		t.Errorf("thread 1 result = %d", got)
	}
	if got := results[1].ReadU64(testResultVA); got != 400*401/2 {
		t.Errorf("thread 2 result = %d", got)
	}
}

func addSumProgram(m *Machine, asn uint8, n int64) (*vm.AddressSpace, error) {
	b := asm.NewBuilder()
	emitSumLoop(n)(b)
	code, err := b.Finish()
	if err != nil {
		return nil, err
	}
	as := vm.NewAddressSpace(m.Phys(), asn, 1<<20)
	img := &vm.Image{Name: "sum", Code: code, Space: as}
	if err := img.Load(m.Phys()); err != nil {
		return nil, err
	}
	as.WriteU64(testResultVA, 0)
	if _, err := m.AddProgram(img); err != nil {
		return nil, err
	}
	return as, nil
}

// TestRetireWidthLimits: a finite retirement width must not change
// results and cannot make the machine faster; a tiny width slows it.
func TestRetireWidthLimits(t *testing.T) {
	const pages = 64
	setup, want := pageWalkSetup(pages)
	run := func(width int) (uint64, uint64) {
		cfg := testConfig()
		cfg.Mech = MechMultithreaded
		cfg.RetireWidth = width
		var as *vm.AddressSpace
		m := buildMachine(t, cfg, emitPageWalk(pages, 4), func(a *vm.AddressSpace) {
			as = a
			setup(a)
		})
		res := mustRun(t, m)
		return res.Cycles, as.ReadU64(testResultVA)
	}
	unlimCycles, unlimRes := run(0)
	wideCycles, wideRes := run(16)
	tightCycles, tightRes := run(1)
	if unlimRes != 4*want || wideRes != 4*want || tightRes != 4*want {
		t.Fatalf("results differ: %d %d %d want %d", unlimRes, wideRes, tightRes, 4*want)
	}
	if wideCycles < unlimCycles {
		t.Errorf("16-wide retire (%d) beat unlimited (%d)", wideCycles, unlimCycles)
	}
	if tightCycles <= unlimCycles {
		t.Errorf("1-wide retire (%d) not slower than unlimited (%d)", tightCycles, unlimCycles)
	}
}

// TestSetAssocDTLBEndToEnd: a 4-way DTLB of the same capacity still
// computes correctly and takes at least as many fills.
func TestSetAssocDTLBEndToEnd(t *testing.T) {
	const pages = 96
	setup, want := pageWalkSetup(pages)
	run := func(ways int) (uint64, uint64) {
		cfg := testConfig()
		cfg.Mech = MechMultithreaded
		cfg.DTLBWays = ways
		var as *vm.AddressSpace
		m := buildMachine(t, cfg, emitPageWalk(pages, 4), func(a *vm.AddressSpace) {
			as = a
			setup(a)
		})
		res := mustRun(t, m)
		return res.DTLBMisses, as.ReadU64(testResultVA)
	}
	faFills, faRes := run(0)
	saFills, saRes := run(4)
	if faRes != 4*want || saRes != 4*want {
		t.Fatalf("results differ under DTLB organizations")
	}
	if saFills < faFills {
		t.Errorf("set-associative fills (%d) below fully-associative (%d)", saFills, faFills)
	}
}
