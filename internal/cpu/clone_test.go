package cpu

import (
	"fmt"
	"reflect"
	"testing"

	"mtexc/internal/diffsim/gen"
	"mtexc/internal/vm"
)

// The clone equivalence property: a machine and its Clone share the
// present, so they must share the future. Run a program partway,
// clone the machine mid-flight — in-flight exceptions, parked loads,
// speculative TLB fills and all — and both copies must produce the
// same retirement stream, cycle for cycle, the same final
// architectural state and the same statistics, while neither run
// perturbs the other.

// cloneTestConfig builds the configuration one equivalence trial runs
// under.
func cloneTestConfig(mech Mechanism, contexts int, quick bool) Config {
	cfg := DefaultConfig()
	cfg.Mech = mech
	cfg.Contexts = contexts
	cfg.QuickStart = quick
	cfg.CheckInvariants = true
	cfg.EmulatePopc = mech == MechTraditional || mech == MechMultithreaded
	cfg.MaxInsts = 5_000_000
	cfg.MaxCycles = 20_000_000
	return cfg
}

// buildGenMachine constructs a machine running one generated program.
func buildGenMachine(t *testing.T, cfg Config, p *gen.Program) (*Machine, int) {
	t.Helper()
	m := New(cfg)
	img, err := p.BuildImage(m.Phys(), 1, cfg.PageTable)
	if err != nil {
		t.Fatal(err)
	}
	tid, err := m.AddProgram(img)
	if err != nil {
		t.Fatal(err)
	}
	return m, tid
}

// stepCycles advances the machine exactly n cycles (or until every
// context halts), leaving it mid-run.
func stepCycles(m *Machine, n uint64) {
	for i := uint64(0); i < n && !m.allHalted(); i++ {
		m.step()
	}
}

// runOutcome is everything a finished run is judged by: the full
// retirement stream from the observation point, the run summary, the
// application thread's architectural state, the memory image and the
// rendered statistics (counters, histograms, span breakdowns — in
// registration order).
type runOutcome struct {
	stream  []RetiredInst
	cycles  uint64
	insts   uint64
	misses  uint64
	regs    interface{}
	memHash uint64
	stats   string
}

// finishRun attaches a retirement recorder, runs the machine to
// completion and collects the outcome.
func finishRun(t *testing.T, m *Machine, tid int) runOutcome {
	t.Helper()
	var stream []RetiredInst
	m.RetireHook = func(ri RetiredInst) { stream = append(stream, ri) }
	res, err := m.Run()
	if err != nil {
		t.Fatalf("Machine.Run: %v", err)
	}
	if res.Cycles >= m.cfg.MaxCycles {
		t.Fatal("did not halt within the cycle budget")
	}
	return runOutcome{
		stream:  stream,
		cycles:  res.Cycles,
		insts:   res.AppInsts,
		misses:  res.DTLBMisses,
		regs:    m.ArchRegs(tid),
		memHash: m.threads[tid].as.ContentHash(),
		stats:   m.Stats.String(),
	}
}

// checkOutcome compares two outcomes field by field with targeted
// diagnostics.
func checkOutcome(t *testing.T, label string, got, want runOutcome) {
	t.Helper()
	if len(got.stream) != len(want.stream) {
		t.Errorf("%s: retirement stream length %d != %d", label, len(got.stream), len(want.stream))
	} else {
		for i := range got.stream {
			if got.stream[i] != want.stream[i] {
				t.Errorf("%s: retirement %d diverges: %+v != %+v", label, i, got.stream[i], want.stream[i])
				break
			}
		}
	}
	if got.cycles != want.cycles || got.insts != want.insts || got.misses != want.misses {
		t.Errorf("%s: summary (cycles=%d insts=%d misses=%d) != (cycles=%d insts=%d misses=%d)",
			label, got.cycles, got.insts, got.misses, want.cycles, want.insts, want.misses)
	}
	if got.regs != want.regs {
		t.Errorf("%s: architectural register files differ", label)
	}
	if got.memHash != want.memHash {
		t.Errorf("%s: memory hash %#x != %#x", label, got.memHash, want.memHash)
	}
	if got.stats != want.stats {
		t.Errorf("%s: statistics diverge:\n--- clone\n%s\n--- original\n%s", label, got.stats, want.stats)
	}
}

func TestCloneEquivalenceMidRun(t *testing.T) {
	configs := []struct {
		name     string
		mech     Mechanism
		contexts int
		quick    bool
	}{
		{"traditional", MechTraditional, 1, false},
		{"multithreaded(1)", MechMultithreaded, 2, false},
		{"multithreaded(3)", MechMultithreaded, 4, false},
		{"quickstart", MechMultithreaded, 2, true},
		{"hardware", MechHardware, 1, false},
	}
	limits := gen.Limits{MaxPages: 128, NoFault: true, NoUnaligned: true}
	for trial, prefix := range []uint64{0, 137, 2000, 4096} {
		p := gen.Generate(int64(4100+trial), limits)
		for _, c := range configs {
			t.Run(fmt.Sprintf("%s/prefix%d", c.name, prefix), func(t *testing.T) {
				m, tid := buildGenMachine(t, cloneTestConfig(c.mech, c.contexts, c.quick), p)
				stepCycles(m, prefix)
				clone := m.Clone()
				// The clone runs to completion first; the original —
				// whose outcome is collected afterwards — would show
				// any state the clone's run leaked into it.
				got := finishRun(t, clone, tid)
				want := finishRun(t, m, tid)
				checkOutcome(t, c.name, got, want)
			})
		}
	}
}

// TestCloneEquivalenceTwoLevel: the property holds over a two-level
// page table, whose walks keep more intermediate state in flight.
func TestCloneEquivalenceTwoLevel(t *testing.T) {
	limits := gen.Limits{MaxPages: 128, NoFault: true, NoUnaligned: true}
	p := gen.Generate(4200, limits)
	for _, mech := range []Mechanism{MechMultithreaded, MechHardware} {
		cfg := cloneTestConfig(mech, 2, false)
		cfg.PageTable = vm.PTTwoLevel
		m, tid := buildGenMachine(t, cfg, p)
		stepCycles(m, 1500)
		clone := m.Clone()
		got := finishRun(t, clone, tid)
		want := finishRun(t, m, tid)
		checkOutcome(t, mech.String()+"/twolevel", got, want)
	}
}

// TestCloneEquivalenceSampler: a machine with an interval sampler
// clones its series mid-epoch; both copies must report identical
// time series afterwards.
func TestCloneEquivalenceSampler(t *testing.T) {
	limits := gen.Limits{MaxPages: 64, NoFault: true, NoUnaligned: true}
	p := gen.Generate(4300, limits)
	cfg := cloneTestConfig(MechMultithreaded, 2, false)
	cfg.SampleInterval = 1000
	m, tid := buildGenMachine(t, cfg, p)
	stepCycles(m, 2500) // mid-epoch: 2.5 sampling intervals in
	clone := m.Clone()
	got := finishRun(t, clone, tid)
	want := finishRun(t, m, tid)
	checkOutcome(t, "sampler", got, want)
	gs, ws := clone.Observ.Series(), m.Observ.Series()
	if !reflect.DeepEqual(gs, ws) {
		t.Errorf("sampled series diverge: %v != %v", gs, ws)
	}
}

// TestResetVsFresh: a machine Reset after a full run, reloaded with
// the same program, must replay it exactly as a freshly constructed
// machine does — same retirement stream, same timing, same
// statistics. The physical-frame allocator rewinds to the
// construction mark, so the reloaded image lands on the same frames
// and even cache indexing is identical.
func TestResetVsFresh(t *testing.T) {
	limits := gen.Limits{MaxPages: 96, NoFault: true, NoUnaligned: true}
	p := gen.Generate(4400, limits)
	for _, mech := range []Mechanism{MechTraditional, MechMultithreaded, MechHardware} {
		contexts := 1
		if mech == MechMultithreaded {
			contexts = 2
		}
		cfg := cloneTestConfig(mech, contexts, false)

		fresh, ftid := buildGenMachine(t, cfg, p)
		want := finishRun(t, fresh, ftid)

		// Dirty a machine with a different program, then Reset and
		// replay the reference program on it.
		other := gen.Generate(4401, limits)
		m, _ := buildGenMachine(t, cfg, other)
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
		m.Reset()
		img, err := p.BuildImage(m.Phys(), 1, cfg.PageTable)
		if err != nil {
			t.Fatal(err)
		}
		tid, err := m.AddProgram(img)
		if err != nil {
			t.Fatal(err)
		}
		got := finishRun(t, m, tid)
		checkOutcome(t, mech.String()+"/reset", got, want)
	}
}

// TestCloneIsolation: writes through a clone must not reach the
// original's memory, TLB or caches, and vice versa.
func TestCloneIsolation(t *testing.T) {
	limits := gen.Limits{MaxPages: 64, NoFault: true, NoUnaligned: true}
	p := gen.Generate(4500, limits)
	m, tid := buildGenMachine(t, cloneTestConfig(MechMultithreaded, 2, false), p)
	stepCycles(m, 1000)
	before := m.threads[tid].as.ContentHash()
	dtlbBefore := *m.dtlb
	clone := m.Clone()
	if _, err := clone.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.threads[tid].as.ContentHash(); got != before {
		t.Errorf("clone run mutated original memory: hash %#x -> %#x", before, got)
	}
	if m.dtlb.Fills != dtlbBefore.Fills || m.dtlb.Hits != dtlbBefore.Hits {
		t.Error("clone run mutated original TLB statistics")
	}
}

// FuzzCloneEquivalence drives the clone property from fuzzed inputs:
// the program seed, the clone point and the configuration corner are
// all attacker-chosen.
func FuzzCloneEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(500), uint8(1), false)
	f.Add(int64(2), uint16(0), uint8(2), true)
	f.Add(int64(3), uint16(3000), uint8(0), false)
	f.Add(int64(4), uint16(77), uint8(3), false)
	f.Fuzz(func(t *testing.T, seed int64, prefix uint16, mechSel uint8, quick bool) {
		var mech Mechanism
		contexts := 1
		switch mechSel % 3 {
		case 0:
			mech = MechTraditional
		case 1:
			mech = MechMultithreaded
			contexts = 2
		case 2:
			mech = MechHardware
		}
		if quick && mech != MechMultithreaded {
			quick = false
		}
		p := gen.Generate(seed, gen.Limits{MaxPages: 64, NoFault: true, NoUnaligned: true})
		m, tid := buildGenMachine(t, cloneTestConfig(mech, contexts, quick), p)
		stepCycles(m, uint64(prefix))
		clone := m.Clone()
		got := finishRun(t, clone, tid)
		want := finishRun(t, m, tid)
		checkOutcome(t, "fuzz", got, want)
	})
}
