// Customhandler: build your own program with the assembler, run it on
// the simulated SMT, and study how the software TLB miss handler's
// length changes the miss penalty (an ablation the paper's Section 4
// motivates: common handlers are "tens of instructions").
//
//	go run ./examples/customhandler
package main

import (
	"fmt"
	"log"

	"mtexc/internal/core"
	"mtexc/internal/isa/asm"
	"mtexc/internal/mem"
	"mtexc/internal/vm"
)

// pageWalker is a hand-written workload: it strides across pages of a
// large array, guaranteeing a DTLB miss on nearly every load.
type pageWalker struct {
	pages int
}

func (w pageWalker) Name() string { return "page-walker" }

func (w pageWalker) Build(phys *mem.Physical, asn uint8) (*vm.Image, error) {
	const dataVA = 0x1000_0000
	src := fmt.Sprintf(`
		; touch one word on each of %d consecutive pages, forever
		limm  r10, %#x         ; array base
		ldi   r12, 1
		slli  r12, r12, 13     ; page size
	outer:
		mov   r11, r10
		ldi   r1, %d
	loop:
		ldq   r4, 0(r11)
		add   r3, r3, r4
		add   r11, r11, r12
		addi  r1, r1, -1
		bne   r1, loop
		br    outer
	`, w.pages, dataVA, w.pages)

	code, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	as := vm.NewAddressSpace(phys, asn, 1<<20)
	img := &vm.Image{Name: w.Name(), Code: code, Space: as}
	if err := img.Load(phys); err != nil {
		return nil, err
	}
	for i := 0; i < w.pages; i++ {
		if err := as.WriteU64(dataVA+uint64(i)*vm.PageSize, uint64(i)); err != nil {
			return nil, err
		}
	}
	return img, nil
}

func main() {
	fmt.Println("generated PAL DTB-miss handler (default configuration):")
	h := vm.GenerateDTBMissHandler(vm.DefaultHandlerConfig())
	fmt.Print(asm.Disassemble(h.Code))

	fmt.Printf("\n%-28s %14s %14s\n", "handler shape", "multi penalty", "trad penalty")
	for _, hc := range []struct {
		name string
		cfg  vm.HandlerConfig
	}{
		{"minimal (11 insts)", vm.HandlerConfig{}},
		{"default (19 insts)", vm.DefaultHandlerConfig()},
		{"bloated (39 insts)", vm.HandlerConfig{ExtraPrologue: 15, ExtraDependent: 10}},
	} {
		multi := penalty(hc.cfg, core.MechMultithreaded, 1)
		trad := penalty(hc.cfg, core.MechTraditional, 0)
		fmt.Printf("%-28s %14.1f %14.1f\n", hc.name, multi, trad)
	}
	fmt.Println("\nLonger handlers cost more under both mechanisms, but the")
	fmt.Println("multithreaded architecture hides more of the added work by")
	fmt.Println("overlapping it with post-exception application instructions.")
}

func penalty(hc vm.HandlerConfig, mech core.Mechanism, idle int) float64 {
	cfg := core.DefaultConfig()
	cfg.Handler = hc
	cfg.Mech = mech
	cfg.Contexts = 1 + idle
	cfg.MaxInsts = 200_000
	cmp, err := core.Compare(cfg, pageWalker{pages: 512})
	if err != nil {
		log.Fatal(err)
	}
	return cmp.PenaltyPerMiss()
}
