// Emulation: the paper's Section 6 generalized mechanism. The POPC
// instruction is removed from the hardware and emulated by a software
// handler that reads the excepting instruction's source value from a
// privileged register and writes its destination with WRTDEST —
// traditionally (trap) or in a spawned handler thread.
//
//	go run ./examples/emulation
package main

import (
	"fmt"
	"log"

	"mtexc/internal/core"
	"mtexc/internal/isa/asm"
	"mtexc/internal/vm"
	"mtexc/internal/workload"
)

func main() {
	fmt.Println("generated POPC emulation handler:")
	fmt.Print(asm.Disassemble(vm.GenerateEmulationHandler().Code))
	fmt.Println()

	w := workload.NewPopcount(16) // one POPC per ~200 instructions

	// Baseline: POPC implemented in hardware.
	base := core.DefaultConfig()
	base.MaxInsts = 400_000
	base.Contexts = 1
	base.Mech = core.MechPerfect
	baseRes, err := core.Run(base, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s %10s %8s %12s\n", "configuration", "cycles", "IPC", "penalty/emu")
	fmt.Printf("%-24s %10d %8.2f %12s\n", "hardware popc", baseRes.Cycles, baseRes.IPC, "-")

	run := func(name string, mech core.Mechanism, idle int, quick bool) {
		cfg := base
		cfg.Mech = mech
		cfg.Contexts = 1 + idle
		cfg.EmulatePopc = true
		cfg.QuickStart = quick
		res, err := core.Run(cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		emus := res.Stats.Get("emu.committed")
		penalty := float64(int64(res.Cycles)-int64(baseRes.Cycles)) / float64(emus)
		fmt.Printf("%-24s %10d %8.2f %12.1f\n", name, res.Cycles, res.IPC, penalty)
	}
	run("traditional emulation", core.MechTraditional, 0, false)
	run("multithreaded emulation", core.MechMultithreaded, 1, false)
	run("quick-start emulation", core.MechMultithreaded, 1, true)

	fmt.Println("\nThe handler reads SRCVAL0, popcounts via the PAL byte table,")
	fmt.Println("and WRTDEST completes the faulting instruction in place — no")
	fmt.Println("squash, no refetch, consumers wake through normal dataflow.")
}
