// Quickstart: simulate one benchmark under all four exception
// architectures and print the paper's headline metric — penalty
// cycles per TLB miss against a perfect-TLB baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"mtexc/internal/core"
	"mtexc/internal/workload"
)

func main() {
	// Pick a workload. The suite mirrors the paper's Table 2; any
	// core.Workload implementation works here.
	bench, err := workload.ByName("compress")
	if err != nil {
		log.Fatal(err)
	}

	// The default configuration is the paper's Table 1 machine:
	// 8-wide SMT, 128-entry window, 7-stage front end, 64-entry DTLB.
	base := core.DefaultConfig()
	base.MaxInsts = 500_000 // length-scaled from the paper's 100M

	fmt.Printf("benchmark: %s — %s\n\n", bench.Name(), bench.Description())
	fmt.Printf("%-22s %10s %10s %8s %14s\n", "mechanism", "cycles", "fills", "IPC", "penalty/miss")

	run := func(name string, mech core.Mechanism, idle int, quick bool) {
		cfg := base
		cfg.Mech = mech
		cfg.Contexts = 1 + idle
		cfg.QuickStart = quick
		cmp, err := core.Compare(cfg, bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10d %10d %8.2f %14.1f\n",
			name, cmp.Subject.Cycles, cmp.Subject.DTLBMisses,
			cmp.Subject.IPC, cmp.PenaltyPerMiss())
	}

	run("traditional trap", core.MechTraditional, 0, false)
	run("multithreaded(1)", core.MechMultithreaded, 1, false)
	run("multithreaded(3)", core.MechMultithreaded, 3, false)
	run("quick-start(1)", core.MechMultithreaded, 1, true)
	run("hardware walker", core.MechHardware, 0, false)

	fmt.Println("\nThe multithreaded handler roughly halves the traditional trap")
	fmt.Println("penalty; quick-starting closes most of the remaining gap to the")
	fmt.Println("hardware page walker (the paper's Figures 5 and 6).")
}
