// Smtmix: run a multiprogrammed SMT mix (three applications plus one
// idle context, as in the paper's Figure 7) and compare exception
// architectures. SMT workloads tolerate miss latency better, so the
// multithreaded win shrinks — but does not vanish.
//
//	go run ./examples/smtmix adm gcc vor
package main

import (
	"fmt"
	"log"
	"os"

	"mtexc/internal/core"
	"mtexc/internal/workload"
)

func main() {
	names := []string{"adm", "gcc", "vor"}
	if len(os.Args) == 4 {
		names = os.Args[1:]
	}
	var loads []core.Workload
	for _, n := range names {
		b, err := workload.ByName(n)
		if err != nil {
			log.Fatal(err)
		}
		loads = append(loads, b)
	}
	fmt.Printf("mix: %s-%s-%s, 3 application threads + 1 idle context\n\n",
		names[0], names[1], names[2])
	fmt.Printf("%-20s %10s %8s %10s %14s\n",
		"mechanism", "cycles", "IPC", "fills", "penalty/miss")

	run := func(label string, mech core.Mechanism, idle int, quick bool) {
		cfg := core.DefaultConfig()
		cfg.Mech = mech
		cfg.Contexts = 3 + idle
		cfg.QuickStart = quick
		cfg.MaxInsts = 600_000
		cmp, err := core.Compare(cfg, loads...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %10d %8.2f %10d %14.1f\n", label,
			cmp.Subject.Cycles, cmp.Subject.IPC, cmp.Subject.DTLBMisses,
			cmp.PenaltyPerMiss())
	}
	run("traditional", core.MechTraditional, 0, false)
	run("multithreaded(1)", core.MechMultithreaded, 1, false)
	run("quick-start(1)", core.MechMultithreaded, 1, true)
	run("hardware", core.MechHardware, 0, false)
}
