// Pipesweep: reproduce the paper's motivation (Section 3) on one
// benchmark — trap overhead grows with front-end depth (Figure 2) and
// with machine width (Figure 3), which is what makes an alternative
// exception architecture worth building.
//
//	go run ./examples/pipesweep
package main

import (
	"fmt"
	"log"

	"mtexc/internal/core"
	"mtexc/internal/workload"
)

func main() {
	bench, err := workload.ByName("murphi")
	if err != nil {
		log.Fatal(err)
	}
	const insts = 400_000

	fmt.Println("traditional trap penalty vs pipeline depth (8-wide):")
	fmt.Printf("%-12s %14s\n", "stages", "penalty/miss")
	for _, depth := range []int{3, 5, 7, 9, 11} {
		cfg := core.DefaultConfig().WithPipeDepth(depth)
		cfg.Mech = core.MechTraditional
		cfg.Contexts = 1
		cfg.MaxInsts = insts
		cmp, err := core.Compare(cfg, bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12d %14.1f\n", depth, cmp.PenaltyPerMiss())
	}

	fmt.Println("\nfraction of run time lost to TLB handling vs width:")
	fmt.Printf("%-12s %14s\n", "machine", "TLB time %")
	for _, shape := range []struct{ w, win int }{{2, 32}, {4, 64}, {8, 128}} {
		cfg := core.DefaultConfig().WithWidth(shape.w, shape.win)
		cfg.Mech = core.MechTraditional
		cfg.Contexts = 1
		cfg.MaxInsts = insts
		cmp, err := core.Compare(cfg, bench)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d-wide/%-5d %13.2f%%\n", shape.w, shape.win,
			cmp.RelativeTLBTime()*100)
	}
	fmt.Println("\nDeeper pipes pay the squash-and-refetch cost twice per trap;")
	fmt.Println("wider machines lose more useful work per squashed window.")
}
