// Command mtexc-fuzz drives the differential-fuzzing subsystem from
// the command line: it generates random seeded programs, runs each
// under the reference emulator and under a sampled grid of machine
// configurations (internal/diffsim), and reports any architectural
// divergence, shrunk to a minimal reproducer:
//
//	mtexc-fuzz -seed 1 -n 200             # 200 programs from seed 1
//	mtexc-fuzz -mech multithreaded -n 50  # one mechanism only
//	mtexc-fuzz -replay v1.s2.p8.t3.f7.k1-17284-15991-10488
//	mtexc-fuzz -inject resume-skip -n 20  # self-test: must diverge
//
// Exit status: 0 when no divergence was found, 1 on a divergence,
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"mtexc/internal/cpu"
	"mtexc/internal/diffsim"
	"mtexc/internal/diffsim/gen"
	"mtexc/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexc-fuzz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed    = fs.Int64("seed", 1, "first generator seed; program i uses seed+i")
		n       = fs.Int("n", 100, "number of programs to generate and cross-check")
		budget  = fs.Int("budget", 200, "shrink budget: candidate executions per divergence")
		mech    = fs.String("mech", "", "restrict the grid to one mechanism (perfect | traditional | multithreaded | hardware)")
		shrink  = fs.Bool("shrink", true, "delta-debug failing programs to minimal reproducers")
		replay  = fs.String("replay", "", "re-run one program spec instead of generating (v1.s...)")
		inject  = fs.String("inject", "", "seed a deliberate core defect (self-test): none | resume-skip")
		verbose = fs.Bool("v", false, "log every program spec as it is checked")
		telAddr = fs.String("telemetry", "", "serve the live telemetry plane on this address (/metrics, /debug/pprof); empty disables")
		eventsP = fs.String("events", "", "write a structured NDJSON event log to this file (empty disables)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	bug, err := cpu.ParseInjectedBug(*inject)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-fuzz:", err)
		return 2
	}
	opt := diffsim.Options{Mech: *mech, Inject: bug}

	tel, err := newFuzzTelemetry(*telAddr, *eventsP, stderr)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-fuzz:", err)
		return 1
	}
	defer tel.close()

	if *replay != "" {
		p, err := gen.ParseSpec(*replay)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-fuzz:", err)
			return 2
		}
		return checkOne(p, opt, tel, *shrink, *budget, stdout, stderr)
	}

	worst := 0
	for i := 0; i < *n; i++ {
		p := gen.Generate(*seed+int64(i), gen.Limits{})
		if *verbose {
			fmt.Fprintf(stdout, "check %s\n", p.Spec())
		}
		if rc := checkOne(p, opt, tel, *shrink, *budget, stdout, stderr); rc > worst {
			worst = rc
		}
	}
	if worst == 0 {
		fmt.Fprintf(stdout, "mtexc-fuzz: %d programs, no divergence\n", *n)
	}
	return worst
}

// fuzzTelemetry is the fuzzing driver's slice of the telemetry plane:
// program/divergence counters on /metrics and fuzz.check /
// fuzz.divergence events in the NDJSON log. The zero value (no plane)
// is fully disabled.
type fuzzTelemetry struct {
	plane       *telemetry.Plane
	srv         *telemetry.Server
	programs    *telemetry.Counter
	divergences *telemetry.Counter
}

// newFuzzTelemetry assembles the requested telemetry surfaces; both
// empty means a disabled (nil-plane) instance.
func newFuzzTelemetry(addr, eventsPath string, stderr io.Writer) (*fuzzTelemetry, error) {
	t := &fuzzTelemetry{}
	if addr == "" && eventsPath == "" {
		return t, nil
	}
	t.plane = telemetry.NewPlane()
	t.programs = t.plane.Reg.Counter("mtexc_fuzz_programs_total",
		"Fuzz programs cross-checked.")
	t.divergences = t.plane.Reg.Counter("mtexc_fuzz_divergences_total",
		"Fuzz programs that diverged from the reference emulator.")
	if eventsPath != "" {
		// Per-program check events are debug-grained; the fuzz log keeps
		// them all so a failing run's artifact shows the full sweep.
		events, err := telemetry.OpenLog(eventsPath, telemetry.LevelDebug)
		if err != nil {
			return nil, err
		}
		t.plane.Events = events
	}
	if addr != "" {
		srv, err := t.plane.Serve(addr)
		if err != nil {
			t.plane.Events.Close()
			return nil, err
		}
		t.srv = srv
		fmt.Fprintf(stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	return t, nil
}

// checked records one cross-checked program.
func (t *fuzzTelemetry) checked(spec string) {
	if t.plane == nil {
		return
	}
	t.programs.Inc()
	t.plane.Events.Emit(telemetry.Event{Type: "fuzz.check", Level: telemetry.LevelDebug,
		Detail: spec})
}

// diverged records one divergence with its repro line.
func (t *fuzzTelemetry) diverged(spec, repro string) {
	if t.plane == nil {
		return
	}
	t.divergences.Inc()
	t.plane.Events.Emit(telemetry.Event{Type: "fuzz.divergence", Level: telemetry.LevelError,
		Fingerprint: spec, Detail: repro})
}

// close flushes and releases the telemetry surfaces.
func (t *fuzzTelemetry) close() {
	if t.plane == nil {
		return
	}
	t.srv.Close()
	t.plane.Events.Close()
}

// checkOne cross-checks a single program, shrinking and reporting any
// divergence. Returns 0 (clean), 1 (divergence) or 2 (invalid
// program — a generator bug, not a core bug).
func checkOne(p *gen.Program, opt diffsim.Options, tel *fuzzTelemetry, shrink bool, budget int, stdout, stderr io.Writer) int {
	tel.checked(p.Spec())
	divs, err := diffsim.CheckProgram(p, opt)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-fuzz:", err)
		return 2
	}
	if len(divs) == 0 {
		return 0
	}
	d := divs[0]
	fmt.Fprintf(stdout, "DIVERGENCE %s\n", d)
	if shrink {
		if res := diffsim.Shrink(p, opt, budget); res != nil {
			d = res.Div
			code, _ := res.Program.Build()
			fmt.Fprintf(stdout, "shrunk to %d instructions (%d candidates): %s\n",
				len(code), res.Tried, d)
		}
	}
	tel.diverged(d.Spec, d.Repro())
	fmt.Fprintf(stdout, "repro: %s\n", d.Repro())
	fmt.Fprintf(stdout, "replay: go run ./cmd/mtexc-fuzz -replay %s\n", d.Spec)
	return 1
}
