package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestCleanSweep(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-seed", "1", "-n", "3"}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s\nstdout: %s", rc, errb.String(), out.String())
	}
	if !strings.Contains(out.String(), "no divergence") {
		t.Errorf("stdout missing summary: %q", out.String())
	}
}

func TestInjectedBugExitsNonzero(t *testing.T) {
	// Seed 2 generates a faulting program (FaultPct > 0), which the
	// resume-skip defect corrupts; the sweep must fail and print a
	// runnable repro.
	var out, errb bytes.Buffer
	rc := run([]string{"-seed", "2", "-n", "1", "-inject", "resume-skip", "-budget", "60"}, &out, &errb)
	if rc != 1 {
		t.Fatalf("rc = %d, want 1; stderr: %s\nstdout: %s", rc, errb.String(), out.String())
	}
	for _, want := range []string{"DIVERGENCE", "shrunk to", "repro: go run ./cmd/mtexcsim -bench 'fuzz:", "replay: go run ./cmd/mtexc-fuzz -replay"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestReplay(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-replay", "v1.s2.p8.t3.f7.k1-17284-15991-10488"}, &out, &errb); rc != 0 {
		t.Fatalf("replay of clean spec: rc = %d; stderr: %s", rc, errb.String())
	}
	if rc := run([]string{"-replay", "not-a-spec"}, &out, &errb); rc != 2 {
		t.Errorf("replay of malformed spec: rc = %d, want 2", rc)
	}
}

func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-definitely-not-a-flag"}, &out, &errb); rc != 2 {
		t.Errorf("unknown flag: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-inject", "quantum"}, &out, &errb); rc != 2 {
		t.Errorf("unknown injection: rc = %d, want 2", rc)
	}
}
