// Command mtexc-lint runs the repository's invariant-checking
// analyzer suite (internal/analysis) over the given packages:
//
//	mtexc-lint ./...
//	mtexc-lint -list
//	mtexc-lint -run detlint,poollint ./internal/cpu
//
// It prints one finding per line as file:line:col: analyzer: message
// and exits 1 if anything fired. Findings are suppressed site by site
// with `//lint:allow <analyzer> <reason>` comments. `make lint` runs
// this after `go vet`; see docs/analysis.md for the catalogue.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mtexc/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mtexc-lint [-run names] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-16s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", " "))
		}
		return
	}
	if *run != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fatalf("unknown analyzer %q (use -list)", name)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fatalf("%v", err)
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fatalf("%v", err)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fatalf("%v", err)
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				name := pos.Filename
				if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
				fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mtexc-lint: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "mtexc-lint: "+format+"\n", args...)
	os.Exit(1)
}
