// Command mtexc-lint runs the repository's invariant-checking
// analyzer suite (internal/analysis) over the given packages:
//
//	mtexc-lint ./...
//	mtexc-lint -list
//	mtexc-lint -run detlint,poollint ./internal/cpu
//
// It prints one finding per line as file:line:col: analyzer: message
// and exits 1 if anything fired. Findings are suppressed site by site
// with `//lint:allow <analyzer> <reason>` comments. `make lint` runs
// this after `go vet`; see docs/analysis.md for the catalogue.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mtexc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mtexc-lint [-run names] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", " "))
		}
		return 0
	}
	if *runNames != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runNames, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "mtexc-lint: unknown analyzer %q (use -list)\n", name)
				return 1
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-lint:", err)
		return 1
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-lint:", err)
		return 1
	}
	pkgs, err := loader.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-lint:", err)
		return 1
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			diags, err := analysis.Run(a, pkg)
			if err != nil {
				fmt.Fprintln(stderr, "mtexc-lint:", err)
				return 1
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				name := pos.Filename
				if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
					name = rel
				}
				fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "mtexc-lint: %d finding(s) in %d package(s)\n", findings, len(pkgs))
		return 1
	}
	return 0
}
