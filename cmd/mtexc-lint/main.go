// Command mtexc-lint runs the repository's invariant-checking
// analyzer suite (internal/analysis) over the given packages:
//
//	mtexc-lint ./...
//	mtexc-lint -list
//	mtexc-lint -run dettaint,atomiclint,hotpathlint ./...
//	mtexc-lint -sarif out/lint.sarif -baseline lint.baseline.json ./...
//	mtexc-lint -prune-suppressions ./...
//
// By default it prints one finding per line as
// file:line:col: analyzer: message and exits 1 if anything fired.
// Findings are suppressed site by site with
// `//lint:allow <analyzer> <reason>` comments; suppressions that no
// longer cover anything are themselves findings. Modes:
//
//	-json                emit the findings as a JSON array instead of text
//	-sarif FILE          also write a SARIF 2.1.0 log to FILE
//	-baseline FILE       exit 1 only on findings not in the committed
//	                     baseline; matched legacy findings are counted
//	-write-baseline FILE snapshot the current findings as the baseline
//	-prune-suppressions  list only the removable //lint:allow comments
//	                     (always runs the full suite over the whole module)
//
// `make lint` runs this after `go vet`; see docs/analysis.md for the
// catalogue and the baseline workflow.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"mtexc/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexc-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default all)")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	sarifPath := fs.String("sarif", "", "write a SARIF 2.1.0 log to this file")
	baselinePath := fs.String("baseline", "", "fail only on findings absent from this baseline file")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
	prune := fs.Bool("prune-suppressions", false, "list only stale/unknown //lint:allow comments")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mtexc-lint [flags] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-16s %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", " "))
		}
		fmt.Fprintf(stdout, "%-16s %s\n", analysis.SuppressAnalyzer,
			"(pseudo) stale or unknown-analyzer //lint:allow comments")
		return 0
	}
	if *runNames != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*runNames, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "mtexc-lint: unknown analyzer %q (use -list)\n", name)
				return 1
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-lint:", err)
		return 1
	}
	loader, err := analysis.NewLoader(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-lint:", err)
		return 1
	}
	loadCwd := cwd
	if *prune {
		// Pruning needs the complete picture: force the full suite over
		// the whole module regardless of the requested patterns.
		analyzers = analysis.All()
		patterns = []string{"./..."}
		loadCwd = loader.ModuleRoot
	}
	// The stale-suppression sweep is only sound when every analyzer a
	// comment could refer to ran over the whole module: a hotpathlint
	// waiver in a leaf package looks stale when the //mtexc:hotpath
	// roots in another package were never loaded. Restrict it to
	// full-suite, module-wide invocations.
	moduleWide := *prune
	for _, pat := range patterns {
		base := loadCwd
		if pat != "./..." {
			if !strings.HasPrefix(pat, "./") || !strings.HasSuffix(pat, "/...") {
				continue
			}
			base = filepath.Join(loadCwd, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
		}
		if base == loader.ModuleRoot {
			moduleWide = true
		}
	}
	checkStale := *runNames == "" && moduleWide
	pkgs, err := loader.Load(loadCwd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-lint:", err)
		return 1
	}

	// One module view across all loaded packages (including transitive
	// imports of the named ones) so the interprocedural analyzers see
	// every call edge regardless of which patterns were requested.
	mod := analysis.NewModule(loader.Loaded())
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		diags, err := analysis.RunSuite(analyzers, mod, pkg, checkStale)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-lint:", err)
			return 1
		}
		for _, d := range diags {
			findings = append(findings, analysis.NewFinding(pkg.Fset, loader.ModuleRoot, d))
		}
	}

	if *prune {
		// Listing mode: only the suppression pseudo-findings, always
		// exit 0 — it answers "what can I delete?", it is not a gate.
		for _, f := range findings {
			if f.Analyzer == analysis.SuppressAnalyzer {
				fmt.Fprintf(stdout, "%s:%d:%d: %s\n", f.File, f.Line, f.Col, f.Message)
			}
		}
		return 0
	}

	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, findings); err != nil {
			fmt.Fprintln(stderr, "mtexc-lint:", err)
			return 1
		}
		fmt.Fprintf(stderr, "mtexc-lint: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	gating := findings
	matchedCount := 0
	if *baselinePath != "" {
		bf, err := os.Open(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-lint:", err)
			return 1
		}
		bl, err := analysis.ReadBaseline(bf)
		bf.Close()
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-lint:", err)
			return 1
		}
		var matched []analysis.Finding
		gating, matched = bl.Apply(findings)
		matchedCount = len(matched)
	}

	if *sarifPath != "" {
		if err := writeSARIFFile(*sarifPath, analyzers, findings); err != nil {
			fmt.Fprintln(stderr, "mtexc-lint:", err)
			return 1
		}
	}
	if *jsonOut {
		if err := analysis.WriteJSON(stdout, gating); err != nil {
			fmt.Fprintln(stderr, "mtexc-lint:", err)
			return 1
		}
	} else {
		for _, f := range gating {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(gating) > 0 {
		fmt.Fprintf(stderr, "mtexc-lint: %d new finding(s) in %d package(s)", len(gating), len(pkgs))
		if matchedCount > 0 {
			fmt.Fprintf(stderr, " (%d baselined finding(s) tolerated)", matchedCount)
		}
		fmt.Fprintln(stderr)
		return 1
	}
	if matchedCount > 0 {
		fmt.Fprintf(stderr, "mtexc-lint: clean apart from %d baselined finding(s)\n", matchedCount)
	}
	return 0
}

// writeBaselineFile snapshots findings as a committed baseline.
func writeBaselineFile(path string, findings []analysis.Finding) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.NewBaseline(findings).WriteBaseline(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSARIFFile writes the full (pre-baseline) findings as SARIF: the
// log documents the repository state; the baseline only shapes the
// exit code.
func writeSARIFFile(path string, analyzers []*analysis.Analyzer, findings []analysis.Finding) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteSARIF(f, analyzers, findings); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
