package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-list"}, &out, &errb); rc != 0 {
		t.Fatalf("-list: rc = %d; stderr: %s", rc, errb.String())
	}
	for _, want := range []string{"detlint", "fingerprintlint", "poollint", "statlint"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list missing analyzer %q:\n%s", want, out.String())
		}
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-run", "imaginarylint"}, &out, &errb); rc != 1 {
		t.Errorf("unknown analyzer: rc = %d, want 1", rc)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnosis: %s", errb.String())
	}
	if rc := run([]string{"-no-such-flag"}, &out, &errb); rc != 2 {
		t.Errorf("unknown flag: rc = %d, want 2", rc)
	}
}

func TestCleanPackage(t *testing.T) {
	// The linter's own package must lint clean; "." resolves relative
	// to the test's working directory, cmd/mtexc-lint.
	var out, errb bytes.Buffer
	if rc := run([]string{"-run", "detlint", "."}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d; stdout: %s\nstderr: %s", rc, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected findings:\n%s", out.String())
	}
}
