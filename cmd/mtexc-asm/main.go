// Command mtexc-asm assembles mtexc ISA source into architectural
// 32-bit words, or disassembles encoded words back into source.
//
// Usage:
//
//	mtexc-asm prog.s              # assemble; hex dump to stdout
//	mtexc-asm -d prog.hex         # disassemble a hex dump
//	echo 'ldi r1, 5' | mtexc-asm -
//
// The handler in internal/vm is written with the same instruction
// set; -handler prints its generated source for reference.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"mtexc/internal/isa/asm"
	"mtexc/internal/vm"
)

func main() {
	var (
		disassemble = flag.Bool("d", false, "disassemble a hex dump instead of assembling")
		handler     = flag.Bool("handler", false, "print the generated PAL DTB-miss handler and exit")
	)
	flag.Parse()

	if *handler {
		h := vm.GenerateDTBMissHandler(vm.DefaultHandlerConfig())
		fmt.Printf("; PAL data-TLB miss handler (%d instructions, common path %d)\n",
			len(h.Code), h.CommonLen)
		fmt.Print(asm.Disassemble(h.Code))
		return
	}

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-asm:", err)
		os.Exit(1)
	}

	if *disassemble {
		if err := runDisassemble(src, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "mtexc-asm:", err)
			os.Exit(1)
		}
		return
	}
	insts, err := asm.Assemble(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-asm:", err)
		os.Exit(1)
	}
	words, err := asm.EncodeAll(insts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-asm:", err)
		os.Exit(1)
	}
	for i, w := range words {
		fmt.Printf("%08x  ; %s\n", w, insts[i])
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(bufio.NewReader(os.Stdin))
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

// runDisassemble parses one hex word per line (comments after the
// first token are ignored) and prints assembler source.
func runDisassemble(src string, w io.Writer) error {
	var words []uint32
	for lineNo, line := range strings.Split(src, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		v, err := strconv.ParseUint(fields[0], 16, 32)
		if err != nil {
			return fmt.Errorf("line %d: %q is not a hex word", lineNo+1, fields[0])
		}
		words = append(words, uint32(v))
	}
	insts, err := asm.DecodeAll(words)
	if err != nil {
		return err
	}
	fmt.Fprint(w, asm.Disassemble(insts))
	return nil
}
