package main

import (
	"fmt"
	"strings"
	"testing"

	"mtexc/internal/isa/asm"
)

func TestRunDisassembleRoundTrip(t *testing.T) {
	srcProg := "ldi r1, 5\naddi r1, r1, 3\nhalt\n"
	insts, err := asm.Assemble(srcProg)
	if err != nil {
		t.Fatal(err)
	}
	words, err := asm.EncodeAll(insts)
	if err != nil {
		t.Fatal(err)
	}
	var dump strings.Builder
	for _, w := range words {
		fmt.Fprintf(&dump, "%08x  ; comment ignored\n", w)
	}
	var out strings.Builder
	if err := runDisassemble(dump.String(), &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ldi r1, 5", "addi r1, r1, 3", "halt"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("disassembly lacks %q:\n%s", want, out.String())
		}
	}
}

func TestRunDisassembleRejectsGarbage(t *testing.T) {
	var out strings.Builder
	if err := runDisassemble("zzzz\n", &out); err == nil {
		t.Error("garbage hex accepted")
	}
	if err := runDisassemble("ff000000\n", &out); err == nil {
		t.Error("undefined opcode accepted")
	}
}
