package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListAndDisasm(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-list"}, &out, &errb); rc != 0 {
		t.Fatalf("-list: rc = %d; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "compress") {
		t.Errorf("-list missing compress:\n%s", out.String())
	}

	out.Reset()
	if rc := run([]string{"-bench", "compress", "-disasm"}, &out, &errb); rc != 0 {
		t.Fatalf("-disasm: rc = %d; stderr: %s", rc, errb.String())
	}
	for _, want := range []string{"disassembly:", "code       :", "footprint  :"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-disasm missing %q:\n%s", want, out.String())
		}
	}
}

func TestFuzzSpecDisasm(t *testing.T) {
	var out, errb bytes.Buffer
	rc := run([]string{"-bench", "fuzz:v1.s2.p8.t3.f7.k1-17284-15991-10488", "-disasm"}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "generated differential-fuzzing program") {
		t.Errorf("missing fuzz description:\n%s", out.String())
	}
}

func TestProfile(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-bench", "compress", "-profile", "-insts", "20000"}, &out, &errb); rc != 0 {
		t.Fatalf("-profile: rc = %d; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "retirement mix:") {
		t.Errorf("-profile missing mix:\n%s", out.String())
	}
}

func TestUnknownBench(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-bench", "no-such"}, &out, &errb); rc != 2 {
		t.Errorf("unknown bench: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-bogus-flag"}, &out, &errb); rc != 2 {
		t.Errorf("unknown flag: rc = %d, want 2", rc)
	}
}
