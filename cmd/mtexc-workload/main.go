// Command mtexc-workload inspects the synthetic benchmark suite:
// disassembles a benchmark's generated code, summarizes its memory
// image, and (with -profile) measures its dynamic instruction mix and
// behaviour on the simulator.
//
// Usage:
//
//	mtexc-workload -list
//	mtexc-workload -bench compress -disasm
//	mtexc-workload -bench vortex -profile -insts 200000
//	mtexc-workload -bench fuzz:v1.s2.p8.t3.f7.k1-17284-15991-10488 -disasm
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mtexc/internal/core"
	"mtexc/internal/isa/asm"
	"mtexc/internal/mem"
	"mtexc/internal/vm"
	"mtexc/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexc-workload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		list    = fs.Bool("list", false, "list the suite and exit")
		bench   = fs.String("bench", "compress", "benchmark name, abbreviation, or fuzz:<spec>")
		disasm  = fs.Bool("disasm", false, "disassemble the generated program")
		profile = fs.Bool("profile", false, "run it and print dynamic behaviour")
		insts   = fs.Uint64("insts", 200_000, "instructions for -profile")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, b := range workload.All() {
			fmt.Fprintf(stdout, "%-12s (%s)  %s\n", b.Name(), b.Short(), b.Description())
		}
		return 0
	}
	var (
		w    core.Workload
		desc string
	)
	if strings.HasPrefix(*bench, workload.FuzzPrefix) {
		f, err := workload.ParseFuzz(*bench)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-workload:", err)
			return 2
		}
		w, desc = f, "generated differential-fuzzing program"
	} else {
		b, err := workload.ByName(*bench)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-workload:", err)
			return 2
		}
		w, desc = b, b.Description()
	}

	phys := mem.NewPhysical()
	img, err := w.Build(phys, 1)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-workload:", err)
		return 1
	}

	fmt.Fprintf(stdout, "%s — %s\n", w.Name(), desc)
	fmt.Fprintf(stdout, "code       : %d instructions at %#x\n", len(img.Code), img.CodeVA)
	pagesMapped := 0
	img.Space.ForEachMapped(func(uint64) { pagesMapped++ })
	fmt.Fprintf(stdout, "footprint  : %d pages (%d KB) mapped, page table at %#x (org %d)\n",
		pagesMapped, pagesMapped*int(vm.PageSize)/1024, img.Space.PTBase(), img.Space.Org())
	fmt.Fprintf(stdout, "init regs  : %d integer registers preloaded\n", len(img.InitInt))

	if *disasm {
		fmt.Fprintln(stdout, "\ndisassembly:")
		fmt.Fprint(stdout, asm.Disassemble(img.Code))
	}

	if *profile {
		cfg := core.DefaultConfig()
		cfg.Mech = core.MechMultithreaded
		cfg.Contexts = 2
		cfg.MaxInsts = *insts
		res, err := core.Run(cfg, w)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-workload:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\ndynamic profile over %d instructions:\n", res.AppInsts)
		fmt.Fprintf(stdout, "  IPC          : %.2f\n", res.IPC)
		fmt.Fprintf(stdout, "  DTLB fills   : %d (%.0f per 100M)\n",
			res.DTLBMisses, float64(res.DTLBMisses)/float64(res.AppInsts)*1e8)
		fmt.Fprintf(stdout, "  mispredicts  : %d resolved\n", res.Stats.Get("bpred.resolved.mispredicts"))
		fmt.Fprintf(stdout, "  squashed     : %d instructions\n", res.Stats.Get("squash.insts"))
		fmt.Fprintln(stdout, "  retirement mix:")
		printClassMix(stdout, res)
	}
	return 0
}

func printClassMix(stdout io.Writer, res core.Result) {
	type entry struct {
		name  string
		count uint64
	}
	var mix []entry
	total := res.Stats.Get("retire.insts")
	for _, class := range []string{
		"intalu", "intmul", "intdiv", "fpadd", "fpmul", "fpdiv",
		"load", "store", "branch", "jump", "priv", "rfe", "nop",
	} {
		if c := res.Stats.Get("retire.class." + class); c > 0 {
			mix = append(mix, entry{class, c})
		}
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].count > mix[j].count })
	for _, e := range mix {
		bar := strings.Repeat("#", int(e.count*40/total))
		fmt.Fprintf(stdout, "    %-8s %6.1f%% %s\n", e.name, float64(e.count)/float64(total)*100, bar)
	}
}
