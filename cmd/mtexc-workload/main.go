// Command mtexc-workload inspects the synthetic benchmark suite:
// disassembles a benchmark's generated code, summarizes its memory
// image, and (with -profile) measures its dynamic instruction mix and
// behaviour on the simulator.
//
// Usage:
//
//	mtexc-workload -list
//	mtexc-workload -bench compress -disasm
//	mtexc-workload -bench vortex -profile -insts 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"mtexc/internal/core"
	"mtexc/internal/isa/asm"
	"mtexc/internal/mem"
	"mtexc/internal/vm"
	"mtexc/internal/workload"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list the suite and exit")
		bench   = flag.String("bench", "compress", "benchmark name or abbreviation")
		disasm  = flag.Bool("disasm", false, "disassemble the generated program")
		profile = flag.Bool("profile", false, "run it and print dynamic behaviour")
		insts   = flag.Uint64("insts", 200_000, "instructions for -profile")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-12s (%s)  %s\n", b.Name(), b.Short(), b.Description())
		}
		return
	}
	b, err := workload.ByName(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-workload:", err)
		os.Exit(2)
	}

	phys := mem.NewPhysical()
	img, err := b.Build(phys, 1)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-workload:", err)
		os.Exit(1)
	}

	fmt.Printf("%s — %s\n", b.Name(), b.Description())
	fmt.Printf("code       : %d instructions at %#x\n", len(img.Code), img.CodeVA)
	pagesMapped := 0
	img.Space.ForEachMapped(func(uint64) { pagesMapped++ })
	fmt.Printf("footprint  : %d pages (%d KB) mapped, page table at %#x (org %d)\n",
		pagesMapped, pagesMapped*int(vm.PageSize)/1024, img.Space.PTBase(), img.Space.Org())
	fmt.Printf("init regs  : %d integer registers preloaded\n", len(img.InitInt))

	if *disasm {
		fmt.Println("\ndisassembly:")
		fmt.Print(asm.Disassemble(img.Code))
	}

	if *profile {
		cfg := core.DefaultConfig()
		cfg.Mech = core.MechMultithreaded
		cfg.Contexts = 2
		cfg.MaxInsts = *insts
		res, err := core.Run(cfg, b)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtexc-workload:", err)
			os.Exit(1)
		}
		fmt.Printf("\ndynamic profile over %d instructions:\n", res.AppInsts)
		fmt.Printf("  IPC          : %.2f\n", res.IPC)
		fmt.Printf("  DTLB fills   : %d (%.0f per 100M)\n",
			res.DTLBMisses, float64(res.DTLBMisses)/float64(res.AppInsts)*1e8)
		fmt.Printf("  mispredicts  : %d resolved\n", res.Stats.Get("bpred.resolved.mispredicts"))
		fmt.Printf("  squashed     : %d instructions\n", res.Stats.Get("squash.insts"))
		fmt.Println("  retirement mix:")
		printClassMix(res)
	}
}

func printClassMix(res core.Result) {
	type entry struct {
		name  string
		count uint64
	}
	var mix []entry
	total := res.Stats.Get("retire.insts")
	for _, class := range []string{
		"intalu", "intmul", "intdiv", "fpadd", "fpmul", "fpdiv",
		"load", "store", "branch", "jump", "priv", "rfe", "nop",
	} {
		if c := res.Stats.Get("retire.class." + class); c > 0 {
			mix = append(mix, entry{class, c})
		}
	}
	sort.Slice(mix, func(i, j int) bool { return mix[i].count > mix[j].count })
	for _, e := range mix {
		bar := strings.Repeat("#", int(e.count*40/total))
		fmt.Printf("    %-8s %6.1f%% %s\n", e.name, float64(e.count)/float64(total)*100, bar)
	}
}
