package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtexc/internal/obs"
)

const sampleBenchOutput = `goos: linux
goarch: amd64
pkg: mtexc/internal/harness
cpu: AMD EPYC 7B13
BenchmarkFigure5Cell/cmp-8         	       5	 46696180 ns/op	   2569819 sim-insts/s	 1843 B/op	       6 allocs/op
BenchmarkFigure5Cell/vor-8         	       3	 61240031 ns/op	   1959204 sim-insts/s	 2011 B/op	       7 allocs/op
PASS
ok  	mtexc/internal/harness	2.412s
`

// TestSnapshotRoundTrip drives the full pipe — parse bench output,
// emit JSON, read it back — and validates the snapshot against the
// obs schema version, as the archival tooling does.
func TestSnapshotRoundTrip(t *testing.T) {
	snap, err := parseSnapshot(strings.NewReader(sampleBenchOutput), io.Discard)
	if err != nil {
		t.Fatalf("parseSnapshot: %v", err)
	}
	var buf bytes.Buffer
	if err := writeSnapshot(&buf, snap); err != nil {
		t.Fatalf("writeSnapshot: %v", err)
	}

	var got snapshot
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("re-reading emitted JSON: %v", err)
	}
	if got.Schema != obs.SchemaVersion {
		t.Errorf("schema = %d, want obs.SchemaVersion = %d", got.Schema, obs.SchemaVersion)
	}
	if got.Schema > obs.SchemaVersion {
		t.Errorf("emitted schema %d newer than the obs reader version %d", got.Schema, obs.SchemaVersion)
	}
	if got.Package != "mtexc/internal/harness" {
		t.Errorf("package = %q, want %q", got.Package, "mtexc/internal/harness")
	}
	if got.CPU != "AMD EPYC 7B13" {
		t.Errorf("cpu = %q, want %q", got.CPU, "AMD EPYC 7B13")
	}
	if len(got.Benchmarks) != 2 {
		t.Fatalf("benchmarks = %d, want 2", len(got.Benchmarks))
	}
	first := got.Benchmarks[0]
	if first.Name != "BenchmarkFigure5Cell/cmp" {
		t.Errorf("name = %q, want GOMAXPROCS suffix stripped", first.Name)
	}
	if first.Iterations != 5 {
		t.Errorf("iterations = %d, want 5", first.Iterations)
	}
	for unit, want := range map[string]float64{
		"ns/op":       46696180,
		"sim-insts/s": 2569819,
		"B/op":        1843,
		"allocs/op":   6,
	} {
		if got := first.Metrics[unit]; got != want {
			t.Errorf("metric %q = %v, want %v", unit, got, want)
		}
	}
}

// TestEmptyInputFails keeps the CI pipe honest: a wedged benchmark
// run must fail the snapshot step, not archive an empty file.
func TestEmptyInputFails(t *testing.T) {
	if _, err := parseSnapshot(strings.NewReader("PASS\nok\n"), io.Discard); err == nil {
		t.Fatal("expected an error for input without benchmark lines")
	}
}

// TestCompareFirstRunWritesBaseline: a missing prior snapshot is not
// an error — the first run seeds the baseline and exits 0.
func TestCompareFirstRunWritesBaseline(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	out := filepath.Join(dir, "BENCH_new.json")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", out, "-compare", base},
		strings.NewReader(sampleBenchOutput), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("first run exited %d, want 0; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "wrote this run as the baseline") {
		t.Errorf("first-run message missing; stdout:\n%s", stdout.String())
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// Second run against the freshly-seeded baseline prints deltas.
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-out", out, "-compare", base},
		strings.NewReader(sampleBenchOutput), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("second run exited %d; stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "BenchmarkFigure5Cell/cmp ns/op: 4.669618e+07 -> 4.669618e+07 (+0.0%)") {
		t.Errorf("per-metric delta missing; stdout:\n%s", stdout.String())
	}
}

// TestCompareCorruptPriorFails: an unreadable prior is a hard error,
// not a silent re-baseline.
func TestCompareCorruptPriorFails(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "BENCH_base.json")
	if err := os.WriteFile(base, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	code := run([]string{"-out", filepath.Join(dir, "o.json"), "-compare", base},
		strings.NewReader(sampleBenchOutput), &stdout, &stderr)
	if code == 0 {
		t.Fatal("corrupt prior snapshot accepted")
	}
}
