// Command mtexc-benchsnap converts `go test -bench` output on stdin
// into a machine-readable JSON snapshot, so benchmark runs can be
// archived and diffed across commits:
//
//	go test -run '^$' -bench . -benchmem . | mtexc-benchsnap -out out/BENCH_dev.json
//	go test -run '^$' -bench . . | mtexc-benchsnap -compare BENCH_base.json
//
// Each benchmark line becomes one record keyed by benchmark name,
// with every reported metric (ns/op, B/op, allocs/op and custom
// metrics like sim-insts/s) preserved under its unit string. The
// snapshot carries the obs schema version so downstream tooling can
// reject layouts newer than it understands, exactly as obs.ReadJSON
// does for simulation snapshots.
//
// With -compare, the fresh run is diffed against a prior snapshot,
// metric by metric. A missing prior is not an error: the first run
// writes the baseline and exits 0, so a new checkout (or a repo whose
// bench trajectory is empty) can adopt the pipe without a manual
// seeding step.
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"mtexc/internal/obs"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type snapshot struct {
	Schema     int      `json:"schema"`
	Taken      string   `json:"taken"`
	Package    string   `json:"package,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexc-benchsnap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "", "output path (default out/BENCH_<timestamp>.json)")
	compare := fs.String("compare", "", "prior snapshot to diff the fresh run against; a missing prior is written as the baseline (first run, exit 0)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// Raw output passes through so the snapshot pipe stays observable
	// in CI logs.
	snap, err := parseSnapshot(stdin, stdout)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-benchsnap:", err)
		return 1
	}
	snap.Taken = time.Now().UTC().Format(time.RFC3339)

	path := *out
	if path == "" {
		if err := os.MkdirAll("out", 0o755); err != nil {
			fmt.Fprintln(stderr, "mtexc-benchsnap:", err)
			return 1
		}
		path = fmt.Sprintf("out/BENCH_%s.json", time.Now().UTC().Format("20060102-150405"))
	}
	if err := writeSnapshotFile(path, snap); err != nil {
		fmt.Fprintln(stderr, "mtexc-benchsnap:", err)
		return 1
	}
	fmt.Fprintf(stderr, "benchmark snapshot written to %s (%d benchmarks)\n", path, len(snap.Benchmarks))

	if *compare != "" {
		return compareAgainst(*compare, snap, stdout, stderr)
	}
	return 0
}

// compareAgainst diffs the fresh snapshot against the prior one at
// basePath. A missing prior degrades gracefully: the fresh snapshot
// becomes the baseline and the run succeeds — there is nothing to
// compare on a first run, and failing would block every new checkout.
func compareAgainst(basePath string, snap snapshot, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(basePath)
	if errors.Is(err, os.ErrNotExist) {
		if err := writeSnapshotFile(basePath, snap); err != nil {
			fmt.Fprintln(stderr, "mtexc-benchsnap:", err)
			return 1
		}
		fmt.Fprintf(stdout, "no prior snapshot at %s: wrote this run as the baseline; nothing to compare on a first run\n", basePath)
		return 0
	}
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-benchsnap:", err)
		return 1
	}
	var base snapshot
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(stderr, "mtexc-benchsnap: prior snapshot %s: %v\n", basePath, err)
		return 1
	}
	if base.Schema > obs.SchemaVersion {
		fmt.Fprintf(stderr, "mtexc-benchsnap: prior snapshot %s has schema %d, newer than this reader (%d)\n",
			basePath, base.Schema, obs.SchemaVersion)
		return 1
	}
	fmt.Fprintf(stdout, "comparing against %s (taken %s)\n", basePath, base.Taken)
	prior := make(map[string]record, len(base.Benchmarks))
	for _, r := range base.Benchmarks {
		prior[r.Name] = r
	}
	seen := make(map[string]bool, len(snap.Benchmarks))
	for _, r := range snap.Benchmarks {
		seen[r.Name] = true
		old, ok := prior[r.Name]
		if !ok {
			fmt.Fprintf(stdout, "  %s: new benchmark (no prior)\n", r.Name)
			continue
		}
		units := make([]string, 0, len(r.Metrics))
		for u := range r.Metrics {
			if _, ok := old.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			was, now := old.Metrics[u], r.Metrics[u]
			fmt.Fprintf(stdout, "  %s %s: %g -> %g (%+.1f%%)\n", r.Name, u, was, now, pctChange(was, now))
		}
	}
	for _, r := range base.Benchmarks {
		if !seen[r.Name] {
			fmt.Fprintf(stdout, "  %s: dropped (present in prior only)\n", r.Name)
		}
	}
	return 0
}

// pctChange is the relative change in percent, defined as 0 for an
// unchanged zero baseline and +Inf for growth from zero.
func pctChange(was, now float64) float64 {
	if was == 0 {
		if now == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return 100 * (now - was) / was
}

// parseSnapshot scans `go test -bench` output from r, echoing every
// line to echo, and assembles the snapshot (without timestamp). It
// fails when no benchmark line was seen: an empty snapshot archived
// in CI would silently hide a wedged benchmark run.
func parseSnapshot(r io.Reader, echo io.Writer) (snapshot, error) {
	snap := snapshot{Schema: obs.SchemaVersion}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			snap.Package = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		snap.Benchmarks = append(snap.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		return snapshot{}, err
	}
	if len(snap.Benchmarks) == 0 {
		return snapshot{}, fmt.Errorf("no benchmark lines on stdin")
	}
	return snap, nil
}

// writeSnapshotFile renders the snapshot as indented JSON at path.
func writeSnapshotFile(path string, snap snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeSnapshot(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeSnapshot renders the snapshot as indented JSON.
func writeSnapshot(w io.Writer, snap snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// parseBenchLine splits a testing benchmark result line:
//
//	BenchmarkName-8   5   46696180 ns/op   2569819 sim-insts/s   6460 allocs/op
//
// into name, iteration count and unit-keyed metrics.
func parseBenchLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", maxProcsSuffix(fields[0]))),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}

// maxProcsSuffix extracts the trailing -N GOMAXPROCS suffix of a
// benchmark name, or 0 when absent.
func maxProcsSuffix(name string) int {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
