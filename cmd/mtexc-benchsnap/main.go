// Command mtexc-benchsnap converts `go test -bench` output on stdin
// into a machine-readable JSON snapshot, so benchmark runs can be
// archived and diffed across commits:
//
//	go test -run '^$' -bench . -benchmem . | mtexc-benchsnap -out out/BENCH_dev.json
//
// Each benchmark line becomes one record keyed by benchmark name,
// with every reported metric (ns/op, B/op, allocs/op and custom
// metrics like sim-insts/s) preserved under its unit string. The
// snapshot carries the obs schema version so downstream tooling can
// reject layouts newer than it understands, exactly as obs.ReadJSON
// does for simulation snapshots.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mtexc/internal/obs"
)

type record struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type snapshot struct {
	Schema     int      `json:"schema"`
	Taken      string   `json:"taken"`
	Package    string   `json:"package,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output path (default out/BENCH_<timestamp>.json)")
	flag.Parse()

	// Raw output passes through so the snapshot pipe stays observable
	// in CI logs.
	snap, err := parseSnapshot(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-benchsnap:", err)
		os.Exit(1)
	}
	snap.Taken = time.Now().UTC().Format(time.RFC3339)

	path := *out
	if path == "" {
		if err := os.MkdirAll("out", 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "mtexc-benchsnap:", err)
			os.Exit(1)
		}
		path = fmt.Sprintf("out/BENCH_%s.json", time.Now().UTC().Format("20060102-150405"))
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-benchsnap:", err)
		os.Exit(1)
	}
	if err := writeSnapshot(f, snap); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "mtexc-benchsnap:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-benchsnap:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchmark snapshot written to %s (%d benchmarks)\n", path, len(snap.Benchmarks))
}

// parseSnapshot scans `go test -bench` output from r, echoing every
// line to echo, and assembles the snapshot (without timestamp). It
// fails when no benchmark line was seen: an empty snapshot archived
// in CI would silently hide a wedged benchmark run.
func parseSnapshot(r io.Reader, echo io.Writer) (snapshot, error) {
	snap := snapshot{Schema: obs.SchemaVersion}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		if v, ok := strings.CutPrefix(line, "pkg: "); ok {
			snap.Package = v
			continue
		}
		if v, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = v
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		rec, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		snap.Benchmarks = append(snap.Benchmarks, rec)
	}
	if err := sc.Err(); err != nil {
		return snapshot{}, err
	}
	if len(snap.Benchmarks) == 0 {
		return snapshot{}, fmt.Errorf("no benchmark lines on stdin")
	}
	return snap, nil
}

// writeSnapshot renders the snapshot as indented JSON.
func writeSnapshot(w io.Writer, snap snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// parseBenchLine splits a testing benchmark result line:
//
//	BenchmarkName-8   5   46696180 ns/op   2569819 sim-insts/s   6460 allocs/op
//
// into name, iteration count and unit-keyed metrics.
func parseBenchLine(line string) (record, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return record{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return record{}, false
	}
	rec := record{
		Name:       strings.TrimSuffix(fields[0], fmt.Sprintf("-%d", maxProcsSuffix(fields[0]))),
		Iterations: iters,
		Metrics:    make(map[string]float64),
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		rec.Metrics[fields[i+1]] = v
	}
	return rec, true
}

// maxProcsSuffix extracts the trailing -N GOMAXPROCS suffix of a
// benchmark name, or 0 when absent.
func maxProcsSuffix(name string) int {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil {
		return 0
	}
	return n
}
