package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtexc/internal/core"
	"mtexc/internal/obs"
	"mtexc/internal/workload"
)

func TestRenderSnapshot(t *testing.T) {
	// Produce a real snapshot from a short run, then render it.
	cfg := core.DefaultConfig()
	cfg.Mech = core.MechMultithreaded
	cfg.Contexts = 2
	cfg.MaxInsts = 20_000
	cfg.SampleInterval = 1_000
	b, err := workload.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(cfg, b)
	if err != nil {
		t.Fatal(err)
	}
	snap := core.Snapshot(cfg, []string{"compress"}, res)
	path := filepath.Join(t.TempDir(), "snap.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteJSON(f, snap); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var out, errb bytes.Buffer
	if rc := run([]string{"-json", path}, &out, &errb); rc != 0 {
		t.Fatalf("rc = %d; stderr: %s", rc, errb.String())
	}
	for _, want := range []string{"# mtexc run snapshot", "benchmarks: compress", "mechanism: multithreaded", "Issue-slot accounting"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("render missing %q:\n%s", want, out.String())
		}
	}
}

func TestSnapshotErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-json", "/no/such/file.json"}, &out, &errb); rc != 1 {
		t.Errorf("missing file: rc = %d, want 1", rc)
	}
	if rc := run([]string{"-not-a-flag"}, &out, &errb); rc != 2 {
		t.Errorf("unknown flag: rc = %d, want 2", rc)
	}
}
