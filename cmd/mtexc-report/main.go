// Command mtexc-report runs the full evaluation and emits a markdown
// reproduction report, checking every reproducible claim of the paper
// against the measured results. Exits nonzero if any claim fails.
//
// Usage:
//
//	mtexc-report -insts 1000000 > report.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtexc/internal/harness"
)

func main() {
	var (
		insts   = flag.Uint64("insts", 500_000, "application instructions per run")
		benches = flag.String("bench", "", "comma-separated benchmark subset (default: all 8)")
		verbose = flag.Bool("v", false, "log every simulation run to stderr")
	)
	flag.Parse()

	opt := harness.Options{Insts: *insts}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if *verbose {
		opt.Progress = os.Stderr
	}
	if err := harness.Report(opt, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "mtexc-report:", err)
		os.Exit(1)
	}
}
