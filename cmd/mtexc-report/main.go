// Command mtexc-report runs the full evaluation and emits a markdown
// reproduction report, checking every reproducible claim of the paper
// against the measured results. Exits nonzero if any claim fails.
//
// With -json it instead reads a snapshot written by `mtexcsim -json`
// and renders its contents (run identity, slot accounting, per-miss
// latency breakdown, sampled series) as markdown.
//
// Usage:
//
//	mtexc-report -insts 1000000 > report.md
//	mtexc-report -json run.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"mtexc/internal/harness"
	"mtexc/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexc-report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		insts   = fs.Uint64("insts", 500_000, "application instructions per run")
		benches = fs.String("bench", "", "comma-separated benchmark subset (default: all 8)")
		jsonIn  = fs.String("json", "", "render a snapshot file written by mtexcsim -json instead of running the evaluation")
		verbose = fs.Bool("v", false, "log every simulation run to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *jsonIn != "" {
		if err := renderSnapshot(stdout, *jsonIn); err != nil {
			fmt.Fprintln(stderr, "mtexc-report:", err)
			return 1
		}
		return 0
	}

	opt := harness.Options{Insts: *insts}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if *verbose {
		opt.Progress = stderr
	}
	if err := harness.Report(opt, stdout); err != nil {
		fmt.Fprintln(stderr, "mtexc-report:", err)
		return 1
	}
	return 0
}

// renderSnapshot prints a snapshot as markdown.
func renderSnapshot(stdout io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		return err
	}

	m := snap.Meta
	fmt.Fprintf(stdout, "# mtexc run snapshot (schema %d)\n\n", snap.Schema)
	fmt.Fprintf(stdout, "- benchmarks: %s\n", strings.Join(m.Benchmarks, ", "))
	mech := m.Mechanism
	if m.QuickStart {
		mech += " + quickstart"
	}
	fmt.Fprintf(stdout, "- mechanism: %s\n", mech)
	fmt.Fprintf(stdout, "- machine: %d-wide, %d-entry window, %d contexts, %d-entry DTLB\n",
		m.Width, m.Window, m.Contexts, m.DTLBSize)
	fmt.Fprintf(stdout, "- cycles: %d, app instructions: %d, IPC: %.3f, DTLB fills: %d\n",
		m.Cycles, m.AppInsts, m.IPC, m.DTLBMisses)

	if s := snap.Slots; s != nil {
		fmt.Fprintf(stdout, "\n## Issue-slot accounting (%d slots = %d cycles × %d wide, identity %v)\n\n",
			s.Width*s.Cycles, s.Cycles, s.Width, s.Identity)
		fmt.Fprintf(stdout, "| category | slots | share |\n|---|---:|---:|\n")
		total := s.Width * s.Cycles
		for _, k := range obs.SlotKinds() {
			v := s.Categories[k.String()]
			share := 0.0
			if total > 0 {
				share = float64(v) / float64(total) * 100
			}
			fmt.Fprintf(stdout, "| %s | %d | %.1f%% |\n", k, v, share)
		}
	}

	if len(snap.Breakdown) > 0 {
		fmt.Fprintf(stdout, "\n## Per-miss latency breakdown (cycles)\n\n")
		fmt.Fprintf(stdout, "| phase | n | mean | p50 | p95 | p99 | max |\n|---|---:|---:|---:|---:|---:|---:|\n")
		names := make([]string, 0, len(snap.Breakdown))
		for n := range snap.Breakdown {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := snap.Breakdown[n]
			fmt.Fprintf(stdout, "| %s | %d | %.1f | %d | %d | %d | %d |\n",
				strings.TrimPrefix(n, "span."), h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max)
		}
	}

	if len(snap.Series) > 0 {
		fmt.Fprintf(stdout, "\n## Sampled series\n\n")
		for _, s := range snap.Series {
			if len(s.Values) == 0 {
				continue
			}
			lo, hi := s.Values[0], s.Values[0]
			for _, v := range s.Values {
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			fmt.Fprintf(stdout, "- %s: %d samples, min %.3f, max %.3f, last %.3f\n",
				s.Name, len(s.Values), lo, hi, s.Values[len(s.Values)-1])
		}
	}
	fmt.Fprintf(stdout, "\n%d retained miss spans, %d counters, %d histograms\n",
		len(snap.Spans), len(snap.Counters), len(snap.Histograms))
	return nil
}
