package main

import (
	"bytes"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"mtexc/internal/workload"
)

// smallArgs is a campaign small enough for a unit test: one workload,
// two classes, two mechanisms, two trials per cell.
func smallArgs(extra ...string) []string {
	args := []string{
		"-specs", workload.FaultInjectionSuite()[0],
		"-classes", "reg,tlb",
		"-mechs", "trad,multi1",
		"-trials", "2",
	}
	return append(args, extra...)
}

func TestCampaignSmoke(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run(smallArgs(), &out, &errb); rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s\nstdout: %s", rc, errb.String(), out.String())
	}
	for _, want := range []string{"Fault-injection campaign: 4 cells", "Outcome histogram", "AVF-style vulnerability"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	var a, b, errb bytes.Buffer
	if rc := run(smallArgs("-parallel", "1"), &a, &errb); rc != 0 {
		t.Fatalf("serial: rc = %d; stderr: %s", rc, errb.String())
	}
	if rc := run(smallArgs("-parallel", "4"), &b, &errb); rc != 0 {
		t.Fatalf("parallel: rc = %d; stderr: %s", rc, errb.String())
	}
	if a.String() != b.String() {
		t.Errorf("reports differ across -parallel:\n--- 1 ---\n%s\n--- 4 ---\n%s", a.String(), b.String())
	}
}

// TestSDCReplayRoundTrip extracts a replay command the campaign
// printed and verifies the trial reproduces bit-for-bit: identical
// replay output on two runs, exit 0.
func TestSDCReplayRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	// reg flips against trad reliably produce SDC trials.
	if rc := run(smallArgs(), &out, &errb); rc != 0 {
		t.Fatalf("campaign: rc = %d; stderr: %s", rc, errb.String())
	}
	m := regexp.MustCompile(`-replay '([^']+)'`).FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("campaign printed no SDC replay command:\n%s", out.String())
	}
	token := m[1]

	var r1, r2, errb1, errb2 bytes.Buffer
	if rc := run([]string{"-replay", token}, &r1, &errb1); rc != 0 {
		t.Fatalf("replay rc = %d; stderr: %s\nstdout: %s", rc, errb1.String(), r1.String())
	}
	if rc := run([]string{"-replay", token}, &r2, &errb2); rc != 0 {
		t.Fatalf("second replay rc = %d; stderr: %s", rc, errb2.String())
	}
	if r1.String() != r2.String() {
		t.Errorf("replay output not reproducible:\n--- first ---\n%s\n--- second ---\n%s", r1.String(), r2.String())
	}
	for _, want := range []string{"flip fired at cycle", "outcome: sdc", "reproduced recorded outcome sdc"} {
		if !strings.Contains(r1.String(), want) {
			t.Errorf("replay output missing %q:\n%s", want, r1.String())
		}
	}
}

// TestReplayMismatchExitsOne: a token whose expected outcome cannot
// reproduce (a never-firing flip recorded as sdc) exits 1.
func TestReplayMismatchExitsOne(t *testing.T) {
	spec := workload.FaultInjectionSuite()[0]
	token := "fi1;spec=" + spec + ";mech=trad;class=reg;at=1099511627776;seed=0x9;expect=sdc"
	var out, errb bytes.Buffer
	if rc := run([]string{"-replay", token}, &out, &errb); rc != 1 {
		t.Fatalf("rc = %d, want 1; stderr: %s\nstdout: %s", rc, errb.String(), out.String())
	}
	if !strings.Contains(errb.String(), "does not reproduce") {
		t.Errorf("stderr missing mismatch report: %q", errb.String())
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	cases := [][]string{
		{"-classes", "bogus"},
		{"-mechs", "bogus"},
		{"-replay", "not-a-token"},
		{"-not-a-flag"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if rc := run(args, &out, &errb); rc != 2 {
			t.Errorf("run(%v) = %d, want 2; stderr: %s", args, rc, errb.String())
		}
	}
}

// TestJournalResumeCLI: -journal -resume answers the whole campaign
// from disk with identical output.
func TestJournalResumeCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fi.journal")
	var a, b, errb bytes.Buffer
	if rc := run(smallArgs("-journal", path), &a, &errb); rc != 0 {
		t.Fatalf("first run: rc = %d; stderr: %s", rc, errb.String())
	}
	if rc := run(smallArgs("-journal", path, "-resume"), &b, &errb); rc != 0 {
		t.Fatalf("resume: rc = %d; stderr: %s", rc, errb.String())
	}
	if a.String() != b.String() {
		t.Errorf("resumed report differs:\n--- first ---\n%s\n--- resumed ---\n%s", a.String(), b.String())
	}
}
