// Command mtexc-faultinject runs transient-fault injection campaigns
// against the cycle-accurate core: seeded single-bit flips in chosen
// state classes (architectural registers, live handler state, TLB
// entries, instruction-window payloads), each classified against the
// differential-fuzzing oracle into masked / detected / sdc / hang /
// crash, and summarized as an AVF-style vulnerability table across
// the paper's mechanism axis:
//
//	mtexc-faultinject                         # default grid, 5 trials/cell
//	mtexc-faultinject -trials 20 -seed 7      # a denser sweep
//	mtexc-faultinject -classes tlb,window -mechs trad,hw
//	mtexc-faultinject -replay 'fi1;spec=v1.s101...;mech=trad;class=tlb;at=123;seed=0xabc;expect=sdc'
//
// The campaign is deterministic: equal seeds over equal grids emit
// byte-identical reports at any -parallel setting, and -journal
// -resume answers completed cells without re-simulating them.
//
// Exit status: 0 on success (replay: outcome matched), 1 on cell
// failures or a replay mismatch, 2 on usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"mtexc/internal/cpu"
	"mtexc/internal/diffsim/gen"
	"mtexc/internal/faultinject"
	"mtexc/internal/harness"
	"mtexc/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexc-faultinject", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Uint64("seed", 1, "campaign seed: drives every per-trial flip derivation")
		trials   = fs.Int("trials", 5, "injection trials per state-class x mechanism x workload cell")
		classes  = fs.String("classes", "", "comma-separated state classes (reg|handler|tlb|window; empty = all)")
		mechs    = fs.String("mechs", "", "comma-separated mechanisms (trad|multi1|multi3|hw; empty = all)")
		specs    = fs.String("specs", "", "comma-separated gen program specs (empty = the built-in suite)")
		frac     = fs.Float64("frac", 0.85, "inject within the first fraction of the unfaulted run's cycles")
		parallel = fs.Int("parallel", 0, "cells run concurrently (0 = one per CPU, 1 = serial)")
		journalP = fs.String("journal", "", "NDJSON journal of completed cells (empty disables journaling)")
		resume   = fs.Bool("resume", false, "reuse cells journaled by a previous invocation instead of re-running them")
		verbose  = fs.Bool("v", false, "log every completed cell")
		telAddr  = fs.String("telemetry", "", "serve the live telemetry plane on this address (/metrics, /debug/cells); empty disables")
		eventsP  = fs.String("events", "", "write a structured NDJSON event log to this file (empty disables)")
		replay   = fs.String("replay", "", "re-run one recorded trial token (fi1;spec=...;...) instead of a campaign")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *replay != "" {
		return replayTrial(*replay, stdout, stderr)
	}

	fc := harness.FaultCampaign{
		Seed:       *seed,
		Trials:     *trials,
		WindowFrac: *frac,
	}
	var err error
	if fc.Classes, err = parseClasses(*classes); err != nil {
		fmt.Fprintln(stderr, "mtexc-faultinject:", err)
		return 2
	}
	if fc.Mechs, err = parseMechs(*mechs); err != nil {
		fmt.Fprintln(stderr, "mtexc-faultinject:", err)
		return 2
	}
	if *specs != "" {
		fc.Specs = strings.Split(*specs, ",")
	}

	// A SIGINT/SIGTERM cancels in-flight cells; cells journaled before
	// the signal survive for a later -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := harness.Options{
		Parallelism: *parallel,
		Context:     ctx,
	}
	if *verbose {
		opt.Progress = stderr
	}
	var journal *harness.Journal
	if *journalP != "" {
		journal, err = harness.OpenJournal(*journalP, *resume)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-faultinject:", err)
			return 1
		}
		defer journal.Close()
		opt.Journal = journal
		if *resume && *verbose {
			fmt.Fprintf(stderr, "resuming: %d journaled cell(s) in %s\n", journal.Len(), *journalP)
		}
	}

	var telSrv *telemetry.Server
	if *telAddr != "" || *eventsP != "" {
		plane := telemetry.NewPlane()
		if *eventsP != "" {
			events, err := telemetry.OpenLog(*eventsP, telemetry.LevelInfo)
			if err != nil {
				fmt.Fprintln(stderr, "mtexc-faultinject:", err)
				return 1
			}
			defer events.Close()
			plane.Events = events
			plane.Reg.CounterFunc("mtexc_event_write_retries_total",
				"Transient event-log append Write errors recovered by the bounded retry.",
				func() float64 { return float64(events.WriteRetries()) })
		}
		if journal != nil {
			plane.Reg.CounterFunc("mtexc_journal_write_retries_total",
				"Transient journal append Write errors recovered by the bounded retry.",
				func() float64 { return float64(journal.WriteRetries()) })
		}
		if *telAddr != "" {
			telSrv, err = plane.Serve(*telAddr)
			if err != nil {
				fmt.Fprintln(stderr, "mtexc-faultinject:", err)
				return 1
			}
			defer telSrv.Close()
			fmt.Fprintf(stderr, "telemetry: serving http://%s/metrics\n", telSrv.Addr())
		}
		opt.Telemetry = plane
	}

	rep, err := harness.RunFaultCampaign(opt, fc)
	rep.WriteText(stdout)
	if err != nil {
		var ee *harness.ExperimentError
		if errors.As(err, &ee) {
			fmt.Fprintf(stderr, "\nmtexc-faultinject: %d cell(s) failed:\n", len(ee.Cells))
			for _, ce := range ee.Cells {
				fmt.Fprintf(stderr, "  %v\n", ce)
				if repro := ce.Repro(); repro != "" {
					fmt.Fprintf(stderr, "    repro: %s\n", repro)
				}
			}
		} else {
			fmt.Fprintln(stderr, "mtexc-faultinject:", err)
		}
		return 1
	}
	return 0
}

// replayTrial re-runs one recorded trial and verifies its outcome
// class reproduces. The printed lines are a pure function of the
// token, so two replays of the same token are byte-identical.
func replayTrial(token string, stdout, stderr io.Writer) int {
	rt, err := faultinject.ParseReplayToken(token)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-faultinject:", err)
		return 2
	}
	p, err := gen.ParseSpec(rt.Spec)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-faultinject:", err)
		return 2
	}
	b, err := faultinject.NewBaseline(p, rt.Mech)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-faultinject:", err)
		return 1
	}
	t := faultinject.RunTrial(p, rt.Mech, b, rt.Plan)
	fmt.Fprintf(stdout, "replay %s under %s: class=%s at=%d seed=%#x\n",
		rt.Spec, rt.Mech.Name, rt.Plan.Class, rt.Plan.At, rt.Plan.Seed)
	if t.Fired {
		fmt.Fprintf(stdout, "flip fired at cycle %d: %s\n", t.FiredAt, t.Target)
	} else {
		fmt.Fprintf(stdout, "flip never found a live target\n")
	}
	fmt.Fprintf(stdout, "outcome: %s", t.Outcome)
	if t.Kind != "" {
		fmt.Fprintf(stdout, " (%s: %s)", t.Kind, t.Detail)
	}
	fmt.Fprintln(stdout)
	if t.Outcome != rt.Expect {
		fmt.Fprintf(stderr, "mtexc-faultinject: outcome %s does not reproduce recorded %s\n",
			t.Outcome, rt.Expect)
		return 1
	}
	fmt.Fprintf(stdout, "reproduced recorded outcome %s\n", rt.Expect)
	return 0
}

func parseClasses(s string) ([]cpu.FaultClass, error) {
	if s == "" {
		return nil, nil
	}
	var cls []cpu.FaultClass
	for _, name := range strings.Split(s, ",") {
		c, err := cpu.ParseFaultClass(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		cls = append(cls, c)
	}
	return cls, nil
}

func parseMechs(s string) ([]faultinject.MechCase, error) {
	if s == "" {
		return nil, nil
	}
	var mcs []faultinject.MechCase
	for _, name := range strings.Split(s, ",") {
		mc, err := faultinject.MechByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		mcs = append(mcs, mc)
	}
	return mcs, nil
}
