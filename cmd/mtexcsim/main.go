// Command mtexcsim runs one benchmark (or mix) under one exception
// architecture and prints the run summary and machine statistics.
//
// Usage:
//
//	mtexcsim -bench compress -mech multithreaded -idle 1 -insts 1e6
//	mtexcsim -bench adm,gcc,vor -mech traditional
//	mtexcsim -bench vor -mech multithreaded -quickstart -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtexc/internal/core"
	"mtexc/internal/trace"
	"mtexc/internal/workload"
)

func main() {
	var (
		benchList  = flag.String("bench", "compress", "comma-separated benchmark name(s); one hardware context each")
		mechName   = flag.String("mech", "multithreaded", "exception architecture: perfect | traditional | multithreaded | hardware")
		idle       = flag.Int("idle", 1, "idle hardware contexts for exception handlers")
		insts      = flag.Uint64("insts", 1_000_000, "application instructions to retire")
		quickstart = flag.Bool("quickstart", false, "pre-stage the handler in idle fetch buffers (Section 5.4)")
		width      = flag.Int("width", 8, "machine width (fetch = decode = issue)")
		window     = flag.Int("window", 128, "instruction window entries")
		depth      = flag.Int("depth", 7, "fetch-to-execute pipeline stages")
		dtlb       = flag.Int("dtlb", 64, "DTLB entries")
		showStats  = flag.Bool("stats", false, "dump all machine statistics")
		traceN     = flag.Int("trace", 0, "print a pipeline diagram of the last N instructions")
		kanata     = flag.String("kanata", "", "write the trace in Kanata viewer format to this file (with -trace)")
		list       = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-12s (%s)  %s\n", b.Name(), b.Short(), b.Description())
		}
		return
	}

	cfg := core.DefaultConfig().WithWidth(*width, *window).WithPipeDepth(*depth)
	cfg.DTLBEntries = *dtlb
	cfg.MaxInsts = *insts
	cfg.MaxCycles = 400 * *insts
	cfg.QuickStart = *quickstart
	switch *mechName {
	case "perfect":
		cfg.Mech = core.MechPerfect
	case "traditional":
		cfg.Mech = core.MechTraditional
	case "multithreaded":
		cfg.Mech = core.MechMultithreaded
	case "hardware":
		cfg.Mech = core.MechHardware
	default:
		fmt.Fprintf(os.Stderr, "mtexcsim: unknown mechanism %q\n", *mechName)
		os.Exit(2)
	}

	var loads []core.Workload
	for _, n := range strings.Split(*benchList, ",") {
		b, err := workload.ByName(strings.TrimSpace(n))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtexcsim:", err)
			os.Exit(2)
		}
		loads = append(loads, b)
	}
	cfg.Contexts = len(loads) + *idle

	var collector *trace.Collector
	var res core.Result
	if *traceN > 0 {
		// Build the machine by hand so the trace hook can attach.
		m := core.NewMachine(cfg)
		for i, w := range loads {
			img, err := w.Build(m.Phys(), uint8(i+1))
			if err != nil {
				fmt.Fprintln(os.Stderr, "mtexcsim:", err)
				os.Exit(1)
			}
			if _, err := m.AddProgram(img); err != nil {
				fmt.Fprintln(os.Stderr, "mtexcsim:", err)
				os.Exit(1)
			}
			m.WarmPageTable(img.Space)
		}
		collector = trace.NewCollector(*traceN)
		m.TraceHook = collector.Add
		res = m.Run()
	} else {
		var err error
		res, err = core.Run(cfg, loads...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtexcsim:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmarks : %s\n", *benchList)
	fmt.Printf("mechanism  : %s", cfg.Mech)
	if cfg.QuickStart {
		fmt.Print(" + quickstart")
	}
	fmt.Println()
	fmt.Printf("machine    : %d-wide, %d-entry window, %d-stage front end, %d-entry DTLB, %d contexts\n",
		cfg.Width, cfg.WindowSize, cfg.PipeDepth(), cfg.DTLBEntries, cfg.Contexts)
	fmt.Printf("cycles     : %d\n", res.Cycles)
	fmt.Printf("app insts  : %d\n", res.AppInsts)
	fmt.Printf("IPC        : %.3f\n", res.IPC)
	fmt.Printf("DTLB fills : %d (%.0f per 100M instructions)\n",
		res.DTLBMisses, float64(res.DTLBMisses)/float64(res.AppInsts)*1e8)
	if *showStats {
		fmt.Println("\nstatistics:")
		fmt.Print(res.Stats.String())
	}
	if collector != nil {
		fmt.Println()
		collector.Render(os.Stdout)
		collector.Summary(os.Stdout)
		if *kanata != "" {
			f, err := os.Create(*kanata)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mtexcsim:", err)
				os.Exit(1)
			}
			if err := trace.WriteKanata(f, collector.Records()); err != nil {
				fmt.Fprintln(os.Stderr, "mtexcsim:", err)
			}
			f.Close()
			fmt.Printf("kanata trace written to %s\n", *kanata)
		}
	}
}
