// Command mtexcsim runs one benchmark (or mix) under one exception
// architecture and prints the run summary and machine statistics.
//
// Usage:
//
//	mtexcsim -bench compress -mech multithreaded -idle 1 -insts 1e6
//	mtexcsim -bench adm,gcc,vor -mech traditional
//	mtexcsim -bench vor -mech multithreaded -quickstart -stats
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mtexc/internal/core"
	"mtexc/internal/obs"
	"mtexc/internal/prof"
	"mtexc/internal/trace"
	"mtexc/internal/workload"
)

// defaultTraceCap is the trace-record capacity implied by the trace
// exporters (-kanata, -chrome) when -trace was not given explicitly.
const defaultTraceCap = 512

func main() {
	var (
		benchList  = flag.String("bench", "compress", "comma-separated benchmark name(s); one hardware context each")
		mechName   = flag.String("mech", "multithreaded", "exception architecture: perfect | traditional | multithreaded | hardware")
		idle       = flag.Int("idle", 1, "idle hardware contexts for exception handlers")
		insts      = flag.Uint64("insts", 1_000_000, "application instructions to retire")
		quickstart = flag.Bool("quickstart", false, "pre-stage the handler in idle fetch buffers (Section 5.4)")
		width      = flag.Int("width", 8, "machine width (fetch = decode = issue)")
		window     = flag.Int("window", 128, "instruction window entries")
		depth      = flag.Int("depth", 7, "fetch-to-execute pipeline stages")
		dtlb       = flag.Int("dtlb", 64, "DTLB entries")
		showStats  = flag.Bool("stats", false, "dump all machine statistics")
		traceN     = flag.Int("trace", 0, "print a pipeline diagram of the last N instructions")
		kanata     = flag.String("kanata", "", "write the trace in Kanata viewer format to this file (implies -trace 512)")
		chromeOut  = flag.String("chrome", "", "write the trace as Chrome trace_event JSON to this file (implies -trace 512)")
		jsonOut    = flag.String("json", "", "write the full run snapshot (stats, slot account, miss breakdown, series) as JSON to this file")
		interval   = flag.Uint64("interval", 0, "sample interval in cycles for time series (0: 10000 when exporting, else off)")
		seriesCSV  = flag.String("seriescsv", "", "write the sampled time series as CSV to this file")
		list       = flag.Bool("list", false, "list available benchmarks and exit")
		noprogress = flag.Uint64("noprogress", core.DefaultConfig().NoProgressLimit, "livelock watchdog: abort after this many cycles without a retirement (0 disables)")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	flag.Parse()

	if *list {
		for _, b := range workload.All() {
			fmt.Printf("%-12s (%s)  %s\n", b.Name(), b.Short(), b.Description())
		}
		return
	}

	// The trace exporters need records to export: turn tracing on at a
	// default capacity when a trace file was requested without -trace.
	if (*kanata != "" || *chromeOut != "") && *traceN <= 0 {
		*traceN = defaultTraceCap
	}

	cfg := core.DefaultConfig().WithWidth(*width, *window).WithPipeDepth(*depth)
	cfg.DTLBEntries = *dtlb
	cfg.MaxInsts = *insts
	cfg.MaxCycles = 400 * *insts
	cfg.QuickStart = *quickstart
	cfg.NoProgressLimit = *noprogress
	cfg.SampleInterval = *interval
	if cfg.SampleInterval == 0 && (*jsonOut != "" || *seriesCSV != "") {
		cfg.SampleInterval = 10_000
	}
	switch *mechName {
	case "perfect":
		cfg.Mech = core.MechPerfect
	case "traditional":
		cfg.Mech = core.MechTraditional
	case "multithreaded":
		cfg.Mech = core.MechMultithreaded
	case "hardware":
		cfg.Mech = core.MechHardware
	default:
		fmt.Fprintf(os.Stderr, "mtexcsim: unknown mechanism %q\n", *mechName)
		os.Exit(2)
	}

	var loads []core.Workload
	for _, n := range strings.Split(*benchList, ",") {
		b, err := workload.ByName(strings.TrimSpace(n))
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtexcsim:", err)
			os.Exit(2)
		}
		loads = append(loads, b)
	}
	cfg.Contexts = len(loads) + *idle

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mtexcsim:", err)
		os.Exit(1)
	}

	var collector *trace.Collector
	var res core.Result
	if *traceN > 0 {
		// Build the machine by hand so the trace hook can attach.
		m := core.NewMachine(cfg)
		for i, w := range loads {
			img, err := w.Build(m.Phys(), uint8(i+1))
			if err != nil {
				fmt.Fprintln(os.Stderr, "mtexcsim:", err)
				os.Exit(1)
			}
			if _, err := m.AddProgram(img); err != nil {
				fmt.Fprintln(os.Stderr, "mtexcsim:", err)
				os.Exit(1)
			}
			m.WarmPageTable(img.Space)
		}
		collector = trace.NewCollector(*traceN)
		m.TraceHook = collector.Add
		var err error
		res, err = m.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "mtexcsim:", err)
			os.Exit(1)
		}
	} else {
		var err error
		res, err = core.Run(cfg, loads...)
		if err != nil {
			// A LivelockError already carries the machine dump; print
			// it whole so the wedge is diagnosable from stderr.
			fmt.Fprintln(os.Stderr, "mtexcsim:", err)
			os.Exit(1)
		}
	}
	// The profiles cover the simulation, not the reporting below.
	if err := stopProf(); err != nil {
		fmt.Fprintln(os.Stderr, "mtexcsim:", err)
		os.Exit(1)
	}

	fmt.Printf("benchmarks : %s\n", *benchList)
	fmt.Printf("mechanism  : %s", cfg.Mech)
	if cfg.QuickStart {
		fmt.Print(" + quickstart")
	}
	fmt.Println()
	fmt.Printf("machine    : %d-wide, %d-entry window, %d-stage front end, %d-entry DTLB, %d contexts\n",
		cfg.Width, cfg.WindowSize, cfg.PipeDepth(), cfg.DTLBEntries, cfg.Contexts)
	fmt.Printf("cycles     : %d\n", res.Cycles)
	fmt.Printf("app insts  : %d\n", res.AppInsts)
	fmt.Printf("IPC        : %.3f\n", res.IPC)
	fmt.Printf("DTLB fills : %d (%.0f per 100M instructions)\n",
		res.DTLBMisses, float64(res.DTLBMisses)/float64(res.AppInsts)*1e8)
	if o := res.Obs; o != nil && o.Slots != nil && o.Slots.Total() > 0 {
		fmt.Printf("slot mix   :")
		for _, k := range obs.SlotKinds() {
			fmt.Printf(" %s %.1f%%", k, o.Slots.Fraction(k)*100)
		}
		fmt.Println()
	}
	if *showStats {
		fmt.Println("\nstatistics:")
		fmt.Print(res.Stats.String())
	}
	if collector != nil {
		fmt.Println()
		collector.Render(os.Stdout)
		collector.Summary(os.Stdout)
		if *kanata != "" {
			writeFile(*kanata, "kanata trace", func(f *os.File) error {
				return trace.WriteKanata(f, collector.Records())
			})
		}
		if *chromeOut != "" {
			writeFile(*chromeOut, "chrome trace", func(f *os.File) error {
				return obs.WriteChromeTrace(f, collector.Records())
			})
		}
	}
	if *jsonOut != "" {
		snap := core.Snapshot(cfg, benchNames(*benchList), res)
		writeFile(*jsonOut, "snapshot", func(f *os.File) error {
			return obs.WriteJSON(f, snap)
		})
	}
	if *seriesCSV != "" {
		writeFile(*seriesCSV, "series CSV", func(f *os.File) error {
			return obs.WriteSeriesCSV(f, res.Obs.Series())
		})
	}
}

func benchNames(list string) []string {
	var names []string
	for _, n := range strings.Split(list, ",") {
		names = append(names, strings.TrimSpace(n))
	}
	return names
}

// writeFile creates path and runs the exporter, failing loudly: a
// requested export that cannot be produced is an error, not a note.
func writeFile(path, what string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mtexcsim: writing %s: %v\n", what, err)
		os.Exit(1)
	}
	if err := write(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "mtexcsim: writing %s: %v\n", what, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "mtexcsim: writing %s: %v\n", what, err)
		os.Exit(1)
	}
	fmt.Printf("%s written to %s\n", what, path)
}
