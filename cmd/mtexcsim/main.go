// Command mtexcsim runs one benchmark (or mix) under one exception
// architecture and prints the run summary and machine statistics.
//
// Usage:
//
//	mtexcsim -bench compress -mech multithreaded -idle 1 -insts 1e6
//	mtexcsim -bench adm,gcc,vor -mech traditional
//	mtexcsim -bench vor -mech multithreaded -quickstart -stats
//
// Benchmark names starting with "fuzz:" replay generated
// differential-fuzzing programs (see cmd/mtexc-fuzz and
// docs/fuzzing.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mtexc/internal/core"
	"mtexc/internal/fastpath"
	"mtexc/internal/mem"
	"mtexc/internal/obs"
	"mtexc/internal/prof"
	"mtexc/internal/trace"
	"mtexc/internal/vm"
	"mtexc/internal/workload"
)

// defaultTraceCap is the trace-record capacity implied by the trace
// exporters (-kanata, -chrome) when -trace was not given explicitly.
const defaultTraceCap = 512

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexcsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		benchList  = fs.String("bench", "compress", "comma-separated benchmark name(s); one hardware context each")
		mechName   = fs.String("mech", "multithreaded", "exception architecture: perfect | traditional | multithreaded | hardware")
		idle       = fs.Int("idle", 1, "idle hardware contexts for exception handlers")
		cores      = fs.Int("cores", 1, "shared-L2 cluster width: -bench runs on core 0, -corunner on every other core (private L1s/TLBs, one shared L2)")
		corunner   = fs.String("corunner", "", "benchmark for cores 1..N-1 of a -cores cluster (default: same as -bench)")
		insts      = fs.Uint64("insts", 1_000_000, "application instructions to retire")
		quickstart = fs.Bool("quickstart", false, "pre-stage the handler in idle fetch buffers (Section 5.4)")
		width      = fs.Int("width", 8, "machine width (fetch = decode = issue)")
		window     = fs.Int("window", 128, "instruction window entries")
		depth      = fs.Int("depth", 7, "fetch-to-execute pipeline stages")
		dtlb       = fs.Int("dtlb", 64, "DTLB entries")
		ptName     = fs.String("pt", "linear", "page-table organization: linear | twolevel")
		emuPopc    = fs.Bool("emupopc", false, "software-emulate POPC via the emulation trap (software mechanisms only)")
		trapUnal   = fs.Bool("trapunaligned", false, "trap and emulate unaligned integer loads (software mechanisms only)")
		showStats  = fs.Bool("stats", false, "dump all machine statistics")
		traceN     = fs.Int("trace", 0, "print a pipeline diagram of the last N instructions")
		kanata     = fs.String("kanata", "", "write the trace in Kanata viewer format to this file (implies -trace 512)")
		chromeOut  = fs.String("chrome", "", "write the trace as Chrome trace_event JSON to this file (implies -trace 512)")
		jsonOut    = fs.String("json", "", "write the full run snapshot (stats, slot account, miss breakdown, series) as JSON to this file")
		interval   = fs.Uint64("interval", 0, "sample interval in cycles for time series (0: 10000 when exporting, else off)")
		seriesCSV  = fs.String("seriescsv", "", "write the sampled time series as CSV to this file")
		sampleSpec = fs.String("sample", "", "sampled mode: period:warmup:window instruction counts (e.g. 100000:10000:10000); estimates the penalty per TLB miss from periodic cycle-accurate windows over a functional fast-forward run")
		functional = fs.Bool("functional", false, "run purely on the threaded-code functional tier (no cycle accounting); reports throughput")
		list       = fs.Bool("list", false, "list available benchmarks and exit")
		noprogress = fs.Uint64("noprogress", core.DefaultConfig().NoProgressLimit, "livelock watchdog: abort after this many cycles without a retirement (0 disables)")
		cellTime   = fs.Duration("cell-timeout", 0, "wall-clock deadline for the simulation (0 = none); mirrors the harness per-cell deadline so timeout-classified cells reproduce")
		cpuProf    = fs.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProf    = fs.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, b := range workload.All() {
			fmt.Fprintf(stdout, "%-12s (%s)  %s\n", b.Name(), b.Short(), b.Description())
		}
		return 0
	}

	// The trace exporters need records to export: turn tracing on at a
	// default capacity when a trace file was requested without -trace.
	if (*kanata != "" || *chromeOut != "") && *traceN <= 0 {
		*traceN = defaultTraceCap
	}

	cfg := core.DefaultConfig().WithWidth(*width, *window).WithPipeDepth(*depth)
	cfg.DTLBEntries = *dtlb
	cfg.MaxInsts = *insts
	cfg.MaxCycles = 400 * *insts
	cfg.QuickStart = *quickstart
	cfg.NoProgressLimit = *noprogress
	cfg.SampleInterval = *interval
	cfg.EmulatePopc = *emuPopc
	cfg.TrapUnaligned = *trapUnal
	if cfg.SampleInterval == 0 && (*jsonOut != "" || *seriesCSV != "") {
		cfg.SampleInterval = 10_000
	}
	switch *mechName {
	case "perfect":
		cfg.Mech = core.MechPerfect
	case "traditional":
		cfg.Mech = core.MechTraditional
	case "multithreaded":
		cfg.Mech = core.MechMultithreaded
	case "hardware":
		cfg.Mech = core.MechHardware
	default:
		fmt.Fprintf(stderr, "mtexcsim: unknown mechanism %q\n", *mechName)
		return 2
	}
	switch *ptName {
	case "linear":
		cfg.PageTable = vm.PTLinear
	case "twolevel":
		cfg.PageTable = vm.PTTwoLevel
	default:
		fmt.Fprintf(stderr, "mtexcsim: unknown page-table organization %q\n", *ptName)
		return 2
	}

	var loads []core.Workload
	for _, n := range strings.Split(*benchList, ",") {
		w, err := resolveBench(strings.TrimSpace(n), cfg.PageTable)
		if err != nil {
			fmt.Fprintln(stderr, "mtexcsim:", err)
			return 2
		}
		loads = append(loads, w)
	}
	cfg.Contexts = len(loads) + *idle

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}

	// The shared-L2 cluster path: N cores with private L1s and TLBs
	// over one shared L2 domain, driven by the deterministic
	// round-robin driver. Reproduces harness SharedL2 cells.
	if *cores > 1 {
		if len(loads) != 1 {
			fmt.Fprintln(stderr, "mtexcsim: -cores takes exactly one -bench benchmark (core 0); use -corunner for the others")
			return 2
		}
		if *functional || *sampleSpec != "" || *traceN > 0 || *kanata != "" || *chromeOut != "" || *jsonOut != "" || *seriesCSV != "" {
			fmt.Fprintln(stderr, "mtexcsim: -cores is incompatible with -functional, -sample, -trace, -kanata, -chrome, -json and -seriescsv")
			return 2
		}
		cfg.Contexts = 1 + *idle
		crName := *corunner
		if crName == "" {
			crName = *benchList
		}
		for i := 1; i < *cores; i++ {
			w, err := resolveBench(strings.TrimSpace(crName), cfg.PageTable)
			if err != nil {
				fmt.Fprintln(stderr, "mtexcsim:", err)
				return 2
			}
			loads = append(loads, w)
		}
		return runCluster(cfg, loads, *showStats, stopProf, stdout, stderr)
	}

	// The two-tier paths: pure functional execution and sampled
	// cycle-accurate windows. Both drive a single workload.
	if *functional && *sampleSpec != "" {
		fmt.Fprintln(stderr, "mtexcsim: -functional and -sample are mutually exclusive")
		return 2
	}
	if *functional || *sampleSpec != "" {
		if len(loads) != 1 {
			fmt.Fprintln(stderr, "mtexcsim: -functional/-sample take exactly one benchmark")
			return 2
		}
		if *functional {
			return runFunctional(loads[0], cfg, stopProf, stdout, stderr)
		}
		spec, err := core.ParseSampleSpec(*sampleSpec)
		if err != nil {
			fmt.Fprintln(stderr, "mtexcsim:", err)
			return 2
		}
		return runSampled(loads[0], cfg, spec, stopProf, stdout, stderr)
	}

	// The per-run deadline mirrors harness.Options.CellTimeout: an
	// overrunning simulation aborts with a *cpu.CancelledError wrapping
	// context.DeadlineExceeded, exactly as a harness cell reports it.
	ctx := context.Background()
	if *cellTime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *cellTime)
		defer cancel()
	}

	var collector *trace.Collector
	var res core.Result
	if *traceN > 0 {
		// Build the machine by hand so the trace hook can attach.
		m := core.NewMachine(cfg)
		for i, w := range loads {
			img, err := w.Build(m.Phys(), uint8(i+1))
			if err != nil {
				fmt.Fprintln(stderr, "mtexcsim:", err)
				return 1
			}
			if _, err := m.AddProgram(img); err != nil {
				fmt.Fprintln(stderr, "mtexcsim:", err)
				return 1
			}
			m.WarmPageTable(img.Space)
		}
		collector = trace.NewCollector(*traceN)
		m.TraceHook = collector.Add
		if ctx.Done() != nil {
			m.SetCancel(ctx.Done())
		}
		var err error
		res, err = m.Run()
		if err != nil {
			fmt.Fprintln(stderr, "mtexcsim:", err)
			return 1
		}
	} else {
		var err error
		res, err = core.RunCtx(ctx, cfg, loads...)
		if err != nil {
			// A LivelockError already carries the machine dump; print
			// it whole so the wedge is diagnosable from stderr.
			fmt.Fprintln(stderr, "mtexcsim:", err)
			return 1
		}
	}
	// The profiles cover the simulation, not the reporting below.
	if err := stopProf(); err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}

	fmt.Fprintf(stdout, "benchmarks : %s\n", *benchList)
	fmt.Fprintf(stdout, "mechanism  : %s", cfg.Mech)
	if cfg.QuickStart {
		fmt.Fprint(stdout, " + quickstart")
	}
	fmt.Fprintln(stdout)
	fmt.Fprintf(stdout, "machine    : %d-wide, %d-entry window, %d-stage front end, %d-entry DTLB, %d contexts\n",
		cfg.Width, cfg.WindowSize, cfg.PipeDepth(), cfg.DTLBEntries, cfg.Contexts)
	fmt.Fprintf(stdout, "cycles     : %d\n", res.Cycles)
	fmt.Fprintf(stdout, "app insts  : %d\n", res.AppInsts)
	fmt.Fprintf(stdout, "IPC        : %.3f\n", res.IPC)
	fmt.Fprintf(stdout, "DTLB fills : %d (%.0f per 100M instructions)\n",
		res.DTLBMisses, float64(res.DTLBMisses)/float64(res.AppInsts)*1e8)
	if o := res.Obs; o != nil && o.Slots != nil && o.Slots.Total() > 0 {
		fmt.Fprintf(stdout, "slot mix   :")
		for _, k := range obs.SlotKinds() {
			fmt.Fprintf(stdout, " %s %.1f%%", k, o.Slots.Fraction(k)*100)
		}
		fmt.Fprintln(stdout)
	}
	if *showStats {
		fmt.Fprintln(stdout, "\nstatistics:")
		fmt.Fprint(stdout, res.Stats.String())
	}
	if collector != nil {
		fmt.Fprintln(stdout)
		collector.Render(stdout)
		collector.Summary(stdout)
		if *kanata != "" {
			if err := writeFile(stdout, *kanata, "kanata trace", func(f *os.File) error {
				return trace.WriteKanata(f, collector.Records())
			}); err != nil {
				fmt.Fprintln(stderr, "mtexcsim:", err)
				return 1
			}
		}
		if *chromeOut != "" {
			if err := writeFile(stdout, *chromeOut, "chrome trace", func(f *os.File) error {
				return obs.WriteChromeTrace(f, collector.Records())
			}); err != nil {
				fmt.Fprintln(stderr, "mtexcsim:", err)
				return 1
			}
		}
	}
	if *jsonOut != "" {
		snap := core.Snapshot(cfg, benchNames(*benchList), res)
		if err := writeFile(stdout, *jsonOut, "snapshot", func(f *os.File) error {
			return obs.WriteJSON(f, snap)
		}); err != nil {
			fmt.Fprintln(stderr, "mtexcsim:", err)
			return 1
		}
	}
	if *seriesCSV != "" {
		if err := writeFile(stdout, *seriesCSV, "series CSV", func(f *os.File) error {
			return obs.WriteSeriesCSV(f, res.Obs.Series())
		}); err != nil {
			fmt.Fprintln(stderr, "mtexcsim:", err)
			return 1
		}
	}
	return 0
}

// runFunctional executes the benchmark purely on the threaded-code
// functional tier — no cycle accounting — and reports throughput.
func runFunctional(w core.Workload, cfg core.Config, stopProf func() error, stdout, stderr io.Writer) int {
	img, err := w.Build(mem.NewPhysical(), 1)
	if err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}
	eng, err := fastpath.New(img, fastpath.Options{Unaligned: cfg.TrapUnaligned})
	if err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}
	start := time.Now()
	ran, ffErr := eng.FastForward(cfg.MaxInsts)
	elapsed := time.Since(start)
	if err := stopProf(); err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}
	if ffErr != nil {
		fmt.Fprintln(stderr, "mtexcsim:", ffErr)
		return 1
	}
	fmt.Fprintf(stdout, "benchmark  : %s\n", w.Name())
	fmt.Fprintf(stdout, "tier       : functional (threaded-code dispatch)\n")
	fmt.Fprintf(stdout, "insts      : %d\n", ran)
	fmt.Fprintf(stdout, "halted     : %v\n", eng.Halted())
	fmt.Fprintf(stdout, "elapsed    : %s\n", elapsed)
	if s := elapsed.Seconds(); s > 0 {
		fmt.Fprintf(stdout, "throughput : %.1fM insts/s\n", float64(ran)/s/1e6)
	}
	return 0
}

// runSampled estimates the penalty per TLB miss from periodic
// cycle-accurate windows over a functional fast-forward of the run
// (core.SampleCompare), and reports the estimate with its confidence
// interval and the detail fraction behind the speedup.
func runSampled(w core.Workload, cfg core.Config, spec core.SampleSpec, stopProf func() error, stdout, stderr io.Writer) int {
	start := time.Now()
	s, err := core.SampleCompare(cfg, spec, w)
	elapsed := time.Since(start)
	if perr := stopProf(); perr != nil {
		fmt.Fprintln(stderr, "mtexcsim:", perr)
		return 1
	}
	if err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}
	fmt.Fprintf(stdout, "benchmark  : %s\n", w.Name())
	fmt.Fprintf(stdout, "mechanism  : %s\n", cfg.Mech)
	fmt.Fprintf(stdout, "sampling   : %s (period:warmup:window)\n", s.Spec)
	fmt.Fprintf(stdout, "windows    : %d\n", s.Windows)
	fmt.Fprintf(stdout, "penalty    : %.2f ± %.2f cycles/miss (95%% CI)\n", s.PenaltyPerMiss, s.CI95)
	fmt.Fprintf(stdout, "miss rate  : %.2f per 1000 insts (measured windows)\n", s.MissesPerKInst)
	// An exact comparison simulates every instruction twice (subject
	// and perfect baseline), so the detail fraction is over 2×total.
	fmt.Fprintf(stdout, "detail     : %d of %d insts cycle-accurate (%.1f%% of the exact-comparison work)\n",
		s.DetailedInsts, 2*s.TotalInsts, 100*float64(s.DetailedInsts)/float64(2*s.TotalInsts))
	fmt.Fprintf(stdout, "elapsed    : %s\n", elapsed)
	return 0
}

// resolveBench maps one -bench name to a workload: a Table 2
// benchmark, or a generated fuzz program ("fuzz:<spec>").
func resolveBench(name string, org vm.PTOrg) (core.Workload, error) {
	if strings.HasPrefix(name, workload.FuzzPrefix) {
		f, err := workload.ParseFuzz(name)
		if err != nil {
			return nil, err
		}
		if org == vm.PTTwoLevel {
			f = f.WithTwoLevelPT()
		}
		return f, nil
	}
	b, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	if org == vm.PTTwoLevel {
		b = b.WithTwoLevelPT()
	}
	return b, nil
}

func benchNames(list string) []string {
	var names []string
	for _, n := range strings.Split(list, ",") {
		names = append(names, strings.TrimSpace(n))
	}
	return names
}

// writeFile creates path and runs the exporter, failing loudly: a
// requested export that cannot be produced is an error, not a note.
func writeFile(stdout io.Writer, path, what string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing %s: %v", what, err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %v", what, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing %s: %v", what, err)
	}
	fmt.Fprintf(stdout, "%s written to %s\n", what, path)
	return nil
}
