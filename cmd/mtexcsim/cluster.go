package main

import (
	"fmt"
	"io"

	"mtexc/internal/core"
	"mtexc/internal/topology"
)

// runCluster drives the shared-L2 topology path of -cores: one core
// per workload over a single shared L2 domain, core 0 being the
// measured benchmark. Prints one summary line per core plus the
// shared-L2 aggregates; -stats dumps the merged statistics set
// (per-core counters under coreN. prefixes).
func runCluster(cfg core.Config, loads []core.Workload, showStats bool, stopProf func() error, stdout, stderr io.Writer) int {
	cl, err := topology.New(topology.Config{Cores: len(loads), Core: cfg})
	if err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}
	for i, w := range loads {
		if err := cl.Load(i, w); err != nil {
			fmt.Fprintln(stderr, "mtexcsim:", err)
			return 1
		}
	}
	results, err := cl.Run()
	if err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}
	if err := stopProf(); err != nil {
		fmt.Fprintln(stderr, "mtexcsim:", err)
		return 1
	}

	fmt.Fprintf(stdout, "topology   : %d cores, private L1/TLB, shared L2 (%d KB)\n",
		cl.Cores(), cfg.Hier.L2.Size>>10)
	fmt.Fprintf(stdout, "mechanism  : %s\n", cfg.Mech)
	fmt.Fprintf(stdout, "machine    : %d-wide, %d-entry window, %d-entry DTLB, %d contexts per core\n",
		cfg.Width, cfg.WindowSize, cfg.DTLBEntries, cfg.Contexts)
	names := cl.WorkloadNames()
	for i, res := range results {
		fmt.Fprintf(stdout, "core %d     : %-12s %10d cycles  %9d insts  IPC %.3f  %6d DTLB fills\n",
			i, names[i], res.Cycles, res.AppInsts, res.IPC, res.DTLBMisses)
	}
	dom := cl.Domain()
	fmt.Fprintf(stdout, "shared L2  : %d hits, %d misses, %d evicts, %d memory-bus transfers\n",
		dom.L2.Hits, dom.L2.Misses, dom.L2.Evicts, dom.MemTransfers())
	if showStats {
		fmt.Fprintln(stdout, "\nstatistics:")
		fmt.Fprint(stdout, cl.MergedStats(results).String())
	}
	return 0
}
