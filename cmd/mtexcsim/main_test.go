package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSmokeRun(t *testing.T) {
	var out, errb bytes.Buffer
	rc := run([]string{"-bench", "compress", "-mech", "multithreaded", "-insts", "20000"}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	for _, want := range []string{"benchmarks : compress", "mechanism  : multithreaded", "IPC"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestFuzzBenchReplay(t *testing.T) {
	var out, errb bytes.Buffer
	rc := run([]string{
		"-bench", "fuzz:v1.s2.p8.t3.f7.k1-17284-15991-10488",
		"-mech", "traditional", "-idle", "0", "-emupopc",
	}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "IPC") {
		t.Errorf("stdout missing run summary:\n%s", out.String())
	}
}

func TestTwoLevelAndExports(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "snap.json")
	var out, errb bytes.Buffer
	rc := run([]string{
		"-bench", "compress", "-mech", "hardware", "-pt", "twolevel",
		"-insts", "20000", "-json", jsonPath,
	}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "snapshot written to") {
		t.Errorf("stdout missing export note:\n%s", out.String())
	}
}

func TestListAndUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-list"}, &out, &errb); rc != 0 {
		t.Errorf("-list: rc = %d, want 0", rc)
	}
	if !strings.Contains(out.String(), "compress") {
		t.Errorf("-list missing compress:\n%s", out.String())
	}
	if rc := run([]string{"-mech", "psychic"}, &out, &errb); rc != 2 {
		t.Errorf("unknown mechanism: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-pt", "inverted"}, &out, &errb); rc != 2 {
		t.Errorf("unknown page table: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-bench", "no-such-bench"}, &out, &errb); rc != 2 {
		t.Errorf("unknown benchmark: rc = %d, want 2", rc)
	}
}
