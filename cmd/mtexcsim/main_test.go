package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSmokeRun(t *testing.T) {
	var out, errb bytes.Buffer
	rc := run([]string{"-bench", "compress", "-mech", "multithreaded", "-insts", "20000"}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	for _, want := range []string{"benchmarks : compress", "mechanism  : multithreaded", "IPC"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestFuzzBenchReplay(t *testing.T) {
	var out, errb bytes.Buffer
	rc := run([]string{
		"-bench", "fuzz:v1.s2.p8.t3.f7.k1-17284-15991-10488",
		"-mech", "traditional", "-idle", "0", "-emupopc",
	}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "IPC") {
		t.Errorf("stdout missing run summary:\n%s", out.String())
	}
}

func TestTwoLevelAndExports(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "snap.json")
	var out, errb bytes.Buffer
	rc := run([]string{
		"-bench", "compress", "-mech", "hardware", "-pt", "twolevel",
		"-insts", "20000", "-json", jsonPath,
	}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "snapshot written to") {
		t.Errorf("stdout missing export note:\n%s", out.String())
	}
}

func TestListAndUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-list"}, &out, &errb); rc != 0 {
		t.Errorf("-list: rc = %d, want 0", rc)
	}
	if !strings.Contains(out.String(), "compress") {
		t.Errorf("-list missing compress:\n%s", out.String())
	}
	if rc := run([]string{"-mech", "psychic"}, &out, &errb); rc != 2 {
		t.Errorf("unknown mechanism: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-pt", "inverted"}, &out, &errb); rc != 2 {
		t.Errorf("unknown page table: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-bench", "no-such-bench"}, &out, &errb); rc != 2 {
		t.Errorf("unknown benchmark: rc = %d, want 2", rc)
	}
}

func TestFunctionalTier(t *testing.T) {
	var out, errb bytes.Buffer
	rc := run([]string{"-bench", "mph", "-functional", "-insts", "100000"}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	for _, want := range []string{"tier       : functional", "insts      : 100000", "throughput"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestSampledMode(t *testing.T) {
	var out, errb bytes.Buffer
	rc := run([]string{
		"-bench", "mph", "-mech", "traditional",
		"-sample", "40000:5000:5000", "-insts", "200000",
	}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	for _, want := range []string{"sampling   : 40000:5000:5000", "windows    : 5", "cycles/miss (95% CI)", "detail"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestSampledModeFlagErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-bench", "mph", "-functional", "-sample", "1000:0:100"}, &out, &errb); rc != 2 {
		t.Errorf("-functional with -sample: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-bench", "mph,cmp", "-functional"}, &out, &errb); rc != 2 {
		t.Errorf("-functional with two benches: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-bench", "mph", "-sample", "nonsense"}, &out, &errb); rc != 2 {
		t.Errorf("bad -sample spec: rc = %d, want 2", rc)
	}
	if rc := run([]string{"-bench", "mph", "-mech", "perfect", "-sample", "40000:5000:5000"}, &out, &errb); rc != 1 {
		t.Errorf("-sample with perfect subject: rc = %d, want 1", rc)
	}
}
