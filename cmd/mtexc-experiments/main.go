// Command mtexc-experiments regenerates the paper's tables and
// figures (Zilles, Emer & Sohi, "The Use of Multithreading for
// Exception Handling", MICRO-32 1999) on the mtexc simulator.
//
// Usage:
//
//	mtexc-experiments -all                # every table and figure
//	mtexc-experiments -fig5 -insts 2e6    # one experiment, longer runs
//	mtexc-experiments -fig2 -bench cmp,vor
//
// Runs are length-scaled from the paper's 100M-instruction windows;
// use -insts to trade time for stability.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"mtexc/internal/core"
	"mtexc/internal/harness"
	"mtexc/internal/prof"
	"mtexc/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtexc-experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all      = fs.Bool("all", false, "run every experiment")
		table1   = fs.Bool("table1", false, "print the machine configuration (Table 1)")
		table2   = fs.Bool("table2", false, "benchmark summary (Table 2)")
		fig2     = fs.Bool("fig2", false, "pipeline-depth trend (Figure 2)")
		fig3     = fs.Bool("fig3", false, "machine-width trend (Figure 3)")
		fig5     = fs.Bool("fig5", false, "mechanism comparison (Figure 5)")
		table3   = fs.Bool("table3", false, "limit studies (Table 3)")
		fig6     = fs.Bool("fig6", false, "quick-start (Figure 6)")
		fig7     = fs.Bool("fig7", false, "multiprogrammed mixes (Figure 7)")
		table4   = fs.Bool("table4", false, "speedups, miss rates, IPC (Table 4)")
		ablate   = fs.Bool("ablate", false, "design-choice ablations (beyond the paper)")
		general  = fs.Bool("general", false, "generalized mechanism: POPC emulation (Section 6)")
		tlbsw    = fs.Bool("tlbsweep", false, "TLB-size sensitivity of the per-miss metric")
		faults   = fs.Bool("faults", false, "page-fault injection / hard-exception study")
		ptorg    = fs.Bool("ptorg", false, "page-table organization study (linear vs two-level)")
		unalign  = fs.Bool("unaligned", false, "generalized mechanism: unaligned loads (Section 6)")
		sharedl2 = fs.Bool("sharedl2", false, "shared-L2 topology study: penalty/miss vs core count and co-runner (not part of -all: cluster cells multiply the instruction budget by the core count)")
		fig5samp = fs.Bool("fig5sampled", false, "mechanism comparison in sampled mode (functional fast-forward + periodic cycle-accurate windows)")
		sampleF  = fs.String("sample", "100000:10000:10000", "sampling spec for -fig5sampled/-sample-check: period:warmup:window instruction counts")
		sampChk  = fs.Bool("sample-check", false, "run Figure 5 both exact and sampled, verify every cell agrees within its confidence interval (plus edge allowance), and report the wall-clock speedup")
		insts    = fs.Uint64("insts", 1_000_000, "application instructions per run")
		benches  = fs.String("bench", "", "comma-separated benchmark subset (default: all 8)")
		verbose  = fs.Bool("v", false, "log every simulation run")
		csv      = fs.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut  = fs.Bool("json", false, "emit newline-delimited JSON rows instead of aligned text")
		parallel = fs.Int("parallel", 0, "simulations run concurrently per experiment (0 = one per CPU, 1 = serial)")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile (post-run) to this file")
		journalP = fs.String("journal", "out/journal.ndjson", "NDJSON journal of completed simulations (empty disables journaling)")
		resume   = fs.Bool("resume", false, "reuse results journaled by a previous (possibly killed) invocation instead of re-simulating them")
		cellTime = fs.Duration("cell-timeout", 0, "wall-clock deadline per simulation (0 = none); an overrunning cell reports FAIL")
		telAddr  = fs.String("telemetry", "", "serve the live telemetry plane on this address (/metrics, /debug/cells, /debug/pprof); empty disables")
		eventsP  = fs.String("events", "", "write a structured NDJSON event log to this file (empty disables)")
		evLevel  = fs.String("events-level", "info", "minimum severity kept in the -events log (debug|info|warn|error)")
		traceP   = fs.String("runtrace", "", "write a Chrome trace of the whole run (one lane per worker) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// A SIGINT/SIGTERM cancels in-flight simulations; cells journaled
	// before the signal survive for a later -resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opt := harness.Options{
		Insts:       *insts,
		Parallelism: *parallel,
		// One baseline cache across every enabled experiment: each
		// perfect-TLB machine shape simulates once per invocation.
		Baselines:   harness.NewBaselineCache(),
		CellTimeout: *cellTime,
		Context:     ctx,
	}
	if *benches != "" {
		opt.Benchmarks = strings.Split(*benches, ",")
	}
	if *verbose {
		opt.Progress = stderr
	}
	var journal *harness.Journal
	if *journalP != "" {
		var err error
		journal, err = harness.OpenJournal(*journalP, *resume)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-experiments:", err)
			return 1
		}
		opt.Journal = journal
		if *resume && *verbose {
			fmt.Fprintf(stderr, "resuming: %d journaled simulation(s) in %s\n", journal.Len(), *journalP)
		}
	}

	// The telemetry plane is assembled from whichever surfaces were
	// requested; everything stays nil (and free) when none were.
	runStart := time.Now()
	var plane *telemetry.Plane
	var telSrv *telemetry.Server
	if *telAddr != "" || *eventsP != "" || *traceP != "" {
		plane = telemetry.NewPlane()
		if *eventsP != "" {
			events, err := telemetry.OpenLog(*eventsP, telemetry.Level(*evLevel))
			if err != nil {
				fmt.Fprintln(stderr, "mtexc-experiments:", err)
				return 1
			}
			defer events.Close()
			plane.Events = events
			plane.Reg.CounterFunc("mtexc_event_write_retries_total",
				"Transient event-log append Write errors recovered by the bounded retry.",
				func() float64 { return float64(events.WriteRetries()) })
		}
		if journal != nil {
			plane.Reg.CounterFunc("mtexc_journal_write_retries_total",
				"Transient journal append Write errors recovered by the bounded retry.",
				func() float64 { return float64(journal.WriteRetries()) })
		}
		if *traceP != "" {
			plane.Trace = telemetry.NewRunTrace()
		}
		if *telAddr != "" {
			var err error
			telSrv, err = plane.Serve(*telAddr)
			if err != nil {
				fmt.Fprintln(stderr, "mtexc-experiments:", err)
				return 1
			}
			defer telSrv.Close()
			fmt.Fprintf(stderr, "telemetry: serving http://%s/metrics\n", telSrv.Addr())
		}
		opt.Telemetry = plane
		plane.RunStarted(strings.Join(args, " "))
	}
	opt.Meter = telemetry.NewMeter()

	stopProf, err := prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-experiments:", err)
		return 1
	}

	type experiment struct {
		enabled *bool
		name    string
		run     func(harness.Options) (*harness.Table, error)
		// noAll keeps an experiment out of -all (it must be asked for
		// by its own flag), so adding one never changes -all's output
		// or wall clock.
		noAll bool
	}
	experiments := []experiment{
		{table2, "Table2", harness.Table2, false},
		{fig2, "Figure2", harness.Figure2, false},
		{fig3, "Figure3", harness.Figure3, false},
		{fig5, "Figure5", harness.Figure5, false},
		{table3, "Table3", harness.Table3, false},
		{fig6, "Figure6", harness.Figure6, false},
		{fig7, "Figure7", harness.Figure7, false},
		{table4, "Table4", harness.Table4, false},
		{ablate, "Ablations", harness.Ablations, false},
		{general, "Generalized", harness.Generalized, false},
		{tlbsw, "TLBSweep", harness.TLBSweep, false},
		{faults, "FaultInjection", harness.FaultInjection, false},
		{ptorg, "PTOrganization", harness.PTOrganization, false},
		{unalign, "Unaligned", harness.Unaligned, false},
		{sharedl2, "SharedL2", harness.SharedL2, true},
	}

	ran := false
	if *table1 || *all {
		printTable1(stdout)
		ran = true
	}
	// Experiments are independent simulations; run the enabled ones
	// concurrently and print in declaration order.
	type outcome struct {
		tab *harness.Table
		err error
	}
	results := make([]*outcome, len(experiments))
	var wg sync.WaitGroup
	for i, e := range experiments {
		if !*e.enabled && !(*all && !e.noAll) {
			continue
		}
		ran = true
		results[i] = &outcome{}
		wg.Add(1)
		go func(i int, name string, run func(harness.Options) (*harness.Table, error)) {
			defer wg.Done()
			// Cell failures are contained inside the harness; this
			// recover is the backstop for panics outside any cell
			// (setup, table assembly), so one broken experiment never
			// takes down its siblings' results.
			defer func() {
				if v := recover(); v != nil {
					results[i].err = fmt.Errorf("%s: internal panic: %v", name, v)
				}
			}()
			results[i].tab, results[i].err = run(opt)
		}(i, e.name, e.run)
	}
	wg.Wait()
	// The sampled-mode runs are not part of the Table-returning
	// experiment set; they run here so the profiles still cover them.
	sampledExit := 0
	if *fig5samp || *sampChk {
		ran = true
		spec, err := core.ParseSampleSpec(*sampleF)
		if err != nil {
			fmt.Fprintln(stderr, "mtexc-experiments:", err)
			return 2
		}
		sampledExit = runSampledFigure5(opt, spec, *sampChk, stdout, stderr)
	}
	// The profiles cover the simulations, not the table printing.
	if err := stopProf(); err != nil {
		fmt.Fprintln(stderr, "mtexc-experiments:", err)
		return 1
	}
	// Print every table — partial ones render failed cells as FAIL —
	// then digest the failures, so one dead cell never hides the rest
	// of the suite's results.
	exitCode := 0
	if sampledExit != 0 {
		exitCode = sampledExit
	}
	var failures []*harness.CellError
	for _, r := range results {
		if r == nil {
			continue
		}
		if r.tab != nil {
			switch {
			case *jsonOut:
				if err := r.tab.WriteJSONRows(stdout); err != nil {
					fmt.Fprintln(stderr, "mtexc-experiments:", err)
					return 1
				}
			case *csv:
				fmt.Fprintf(stdout, "# %s\n%s\n", r.tab.Title, r.tab.CSV())
			default:
				fmt.Fprintln(stdout, r.tab)
			}
		}
		if r.err != nil {
			exitCode = 1
			var ee *harness.ExperimentError
			if errors.As(r.err, &ee) {
				failures = append(failures, ee.Cells...)
			} else {
				fmt.Fprintln(stderr, "mtexc-experiments:", r.err)
			}
		}
	}
	for _, ce := range failures {
		fmt.Fprintf(stderr, "mtexc-experiments: FAILED %v\n", ce)
		if repro := ce.Repro(); repro != "" {
			fmt.Fprintf(stderr, "  repro: %s\n", repro)
		}
		if *verbose && len(ce.Stack) > 0 {
			fmt.Fprintf(stderr, "  stack:\n%s\n", ce.Stack)
		}
	}
	if len(failures) > 0 {
		fmt.Fprintf(stderr, "mtexc-experiments: %d cell(s) failed; rerun with -v for stacks\n", len(failures))
	}
	if journal != nil {
		if *verbose {
			fmt.Fprintf(stderr, "journal: %d hit(s), %d new entr%s\n",
				journal.Hits(), journal.Appends(), plural(journal.Appends(), "y", "ies"))
		}
		if err := journal.Close(); err != nil {
			fmt.Fprintln(stderr, "mtexc-experiments:", err)
			exitCode = 1
		}
	}
	if !ran {
		fs.Usage()
		return 2
	}
	fmt.Fprintln(stderr, opt.Meter.Summary())
	if plane != nil {
		status := "ok"
		if exitCode != 0 {
			status = "fail"
		}
		plane.RunFinished(status, time.Since(runStart).Seconds()*1e3)
		if plane.Trace != nil {
			if err := writeRunTrace(*traceP, plane.Trace); err != nil {
				fmt.Fprintln(stderr, "mtexc-experiments:", err)
				exitCode = 1
			} else if *verbose {
				fmt.Fprintf(stderr, "runtrace: %d span(s) -> %s\n", plane.Trace.Len(), *traceP)
			}
		}
	}
	return exitCode
}

// runSampledFigure5 regenerates Figure 5 in sampled mode and prints
// the estimate and confidence tables. With check set it also runs the
// exact experiment and verifies each cell agrees within its
// confidence interval plus a small edge allowance (for the exact
// run's cold-start ramp and window-boundary stall spill — see
// docs/performance.md), reporting the wall-clock speedup.
func runSampledFigure5(opt harness.Options, spec core.SampleSpec, check bool, stdout, stderr io.Writer) int {
	t0 := time.Now()
	samp, err := harness.Figure5Sampled(opt, spec)
	sampElapsed := time.Since(t0)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-experiments:", err)
		return 1
	}
	fmt.Fprintln(stdout, samp.Est)
	fmt.Fprintln(stdout, samp.CI)
	fmt.Fprintf(stdout, "sampled detail: %d of %d insts cycle-accurate (%.1f%% of the exact-comparison work), %s wall clock\n\n",
		samp.DetailedInsts, 2*samp.TotalInsts,
		100*float64(samp.DetailedInsts)/float64(2*samp.TotalInsts), sampElapsed.Round(time.Millisecond))
	if !check {
		return 0
	}
	t1 := time.Now()
	exact, err := harness.Figure5(opt)
	exactElapsed := time.Since(t1)
	if err != nil {
		fmt.Fprintln(stderr, "mtexc-experiments:", err)
		return 1
	}
	fmt.Fprintln(stdout, exact)
	bad := 0
	for r, row := range exact.Rows {
		if row == "average" {
			continue
		}
		for c, col := range exact.Cols {
			if exact.FailedAt(r, c) || samp.Est.FailedAt(r, c) {
				fmt.Fprintf(stderr, "mtexc-experiments: sample-check %s/%s: cell FAILED\n", row, col)
				bad++
				continue
			}
			want, got, ci := exact.Get(r, c), samp.Est.Get(r, c), samp.CI.Get(r, c)
			tol := ci + 0.05*math.Abs(want) + 0.75
			if diff := math.Abs(got - want); diff > tol {
				fmt.Fprintf(stderr, "mtexc-experiments: sample-check %s/%s: sampled %.2f±%.2f vs exact %.2f: |Δ|=%.2f exceeds tolerance %.2f\n",
					row, col, got, ci, want, diff, tol)
				bad++
			}
		}
	}
	fmt.Fprintf(stdout, "sample-check: exact %s, sampled %s (%.1fx wall clock)\n",
		exactElapsed.Round(time.Millisecond), sampElapsed.Round(time.Millisecond),
		exactElapsed.Seconds()/sampElapsed.Seconds())
	if bad > 0 {
		fmt.Fprintf(stderr, "mtexc-experiments: sample-check: %d cell(s) outside tolerance\n", bad)
		return 1
	}
	fmt.Fprintln(stdout, "sample-check: all cells within tolerance")
	return 0
}

// writeRunTrace renders the collected run trace as a Chrome trace
// file, creating parent directories as needed.
func writeRunTrace(path string, tr *telemetry.RunTrace) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteChrome(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func plural(n int64, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

func printTable1(w io.Writer) {
	fmt.Fprint(w, `Table 1: base simulated machine configuration
  Core          8-wide SMT, dynamically scheduled, 128-entry shared window,
                oldest-fetched-first issue, per-thread in-order retirement
  Pipeline      3 fetch + 1 decode + 1 schedule + 2 register read
                (7 stages fetch-to-execute nominal)
  FUs           8 iALU(1), 3 iMUL/DIV(3/12), 3 FADD(2)/FMUL(4),
                1 FDIV/SQRT(12/26), 3 load/store ports (3/2); all pipelined
  Branch pred   YAGS 2^14 choice + 2^12 exceptions (6-bit tags); cascaded
                indirect 2^8/2^10; 64-entry checkpointing RAS; perfect
                direct-branch targets
  Memory        64KB/2-way/32B L1I and L1D; 1MB/4-way/64B unified L2
                (6-cycle); 16B L1/L2 bus; 11-cycle L2/mem occupancy;
                80-cycle memory; 64 MSHRs (best load-use 3/12/104)
  Translation   perfect ITLB; 64-entry DTLB; PAL and user instructions
                co-exist; speculative miss handling; renamed miss registers;
                perfect common-case handler length prediction

`)
}
