package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-table1", "-journal", ""}, &out, &errb); rc != 0 {
		t.Fatalf("-table1: rc = %d; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "Table 1: base simulated machine configuration") {
		t.Errorf("missing Table 1 header:\n%s", out.String())
	}
}

func TestTable2Smoke(t *testing.T) {
	var out, errb bytes.Buffer
	rc := run([]string{"-table2", "-bench", "compress", "-insts", "20000", "-journal", ""}, &out, &errb)
	if rc != 0 {
		t.Fatalf("-table2: rc = %d; stderr: %s", rc, errb.String())
	}
	if !strings.Contains(out.String(), "compress") {
		t.Errorf("table missing compress row:\n%s", out.String())
	}
}

func TestUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-journal", ""}, &out, &errb); rc != 2 {
		t.Errorf("no experiments selected: rc = %d, want 2", rc)
	}
	if !strings.Contains(errb.String(), "Usage of mtexc-experiments") {
		t.Errorf("stderr missing usage text: %s", errb.String())
	}
	if rc := run([]string{"-made-up-flag"}, &out, &errb); rc != 2 {
		t.Errorf("unknown flag: rc = %d, want 2", rc)
	}
}

// TestSampleCheckSmoke is the short end-to-end form of the CI
// sampling-smoke job: exact vs sampled Figure 5 on one benchmark must
// agree within the reported confidence intervals.
func TestSampleCheckSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs Figure 5 twice")
	}
	var out, errb bytes.Buffer
	rc := run([]string{
		"-sample-check", "-bench", "mph", "-insts", "400000",
		"-sample", "50000:10000:10000", "-journal", "",
	}, &out, &errb)
	if rc != 0 {
		t.Fatalf("rc = %d, want 0; stderr: %s", rc, errb.String())
	}
	for _, want := range []string{"Figure 5 (sampled", "confidence half-width", "sample-check: all cells within tolerance"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("stdout missing %q:\n%s", want, out.String())
		}
	}
}

func TestBadSampleSpec(t *testing.T) {
	var out, errb bytes.Buffer
	if rc := run([]string{"-fig5sampled", "-sample", "bogus", "-journal", ""}, &out, &errb); rc != 2 {
		t.Errorf("bad -sample spec: rc = %d, want 2", rc)
	}
}
