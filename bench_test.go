// Package mtexc_bench regenerates every table and figure of the
// paper's evaluation as Go benchmarks — one benchmark per experiment,
// reporting the paper's metrics via b.ReportMetric. Run with:
//
//	go test -bench=. -benchmem
//
// The instruction budgets are scaled for benchmark turnaround; use
// cmd/mtexc-experiments for full-length regeneration.
package mtexc_bench

import (
	"testing"

	"mtexc/internal/core"
	"mtexc/internal/fastpath"
	"mtexc/internal/harness"
	"mtexc/internal/isa/asm"
	"mtexc/internal/mem"
	"mtexc/internal/workload"
)

const benchInsts = 120_000

func benchOpt() harness.Options {
	return harness.Options{Insts: benchInsts}
}

// BenchmarkTable2Workloads measures the per-benchmark run itself:
// simulated instructions per second for the whole Table 2 suite under
// the multithreaded mechanism, plus each benchmark's miss density.
func BenchmarkTable2Workloads(b *testing.B) {
	for _, w := range workload.All() {
		w := w
		b.Run(w.Short(), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Mech = core.MechMultithreaded
			cfg.Contexts = 2
			cfg.MaxInsts = benchInsts
			var lastMiss float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(cfg, w)
				if err != nil {
					b.Fatal(err)
				}
				lastMiss = float64(res.DTLBMisses) / float64(res.AppInsts) * 1e6
			}
			b.ReportMetric(lastMiss, "misses/Minst")
			b.ReportMetric(float64(benchInsts*uint64(b.N))/b.Elapsed().Seconds(), "sim-insts/s")
		})
	}
}

// BenchmarkFigure2PipelineDepth regenerates Figure 2 and reports the
// average penalty at each depth plus the per-stage slope.
func BenchmarkFigure2PipelineDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure2(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Cell("average", "3 stages"), "penalty@3")
		b.ReportMetric(tab.Cell("average", "7 stages"), "penalty@7")
		b.ReportMetric(tab.Cell("average", "11 stages"), "penalty@11")
		b.ReportMetric((tab.Cell("average", "11 stages")-tab.Cell("average", "3 stages"))/8, "slope")
	}
}

// BenchmarkFigure3Width regenerates Figure 3 and reports the relative
// TLB-handling time growth from 2-wide to 8-wide.
func BenchmarkFigure3Width(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Cell("average", "4w/64win"), "rel@4wide")
		b.ReportMetric(tab.Cell("average", "8w/128win"), "rel@8wide")
	}
}

// BenchmarkFigure5Mechanisms regenerates Figure 5 and reports the
// average penalty per mechanism (the paper's 22.7 / 11.7 / 11.0 /
// 7.3 cycle row).
func BenchmarkFigure5Mechanisms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure5(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Cell("average", "traditional"), "trad")
		b.ReportMetric(tab.Cell("average", "multi(1)"), "multi1")
		b.ReportMetric(tab.Cell("average", "multi(3)"), "multi3")
		b.ReportMetric(tab.Cell("average", "hardware"), "hw")
	}
}

// BenchmarkTable3LimitStudies regenerates Table 3, reporting the
// multithreaded baseline and the dominant (instant-fetch) limit.
func BenchmarkTable3LimitStudies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Table3(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Cell("multithreaded", "penalty/miss"), "multi")
		b.ReportMetric(tab.Cell("instant fetch", "penalty/miss"), "instant")
		b.ReportMetric(tab.Cell("hardware", "penalty/miss"), "hw")
	}
}

// BenchmarkFigure6QuickStart regenerates Figure 6, reporting the
// quick-start gain over plain multithreaded handling.
func BenchmarkFigure6QuickStart(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure6(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		m1 := tab.Cell("average", "multi(1)")
		qs := tab.Cell("average", "quickstart(1)")
		b.ReportMetric(m1, "multi1")
		b.ReportMetric(qs, "quickstart")
		b.ReportMetric(m1-qs, "gain")
	}
}

// BenchmarkFigure7Multiprogrammed regenerates Figure 7 over two of
// the paper's mixes (all eight via cmd/mtexc-experiments -fig7).
func BenchmarkFigure7Multiprogrammed(b *testing.B) {
	opt := benchOpt()
	opt.Mixes = [][3]string{{"adm", "gcc", "vor"}, {"cmp", "gcc", "mph"}}
	for i := 0; i < b.N; i++ {
		tab, err := harness.Figure7(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Cell("average", "traditional"), "trad")
		b.ReportMetric(tab.Cell("average", "multi(1)"), "multi1")
		b.ReportMetric(tab.Cell("average", "hardware"), "hw")
	}
}

// BenchmarkTable4Speedups regenerates Table 4 on the heavy TLB
// pressers, reporting the multithreaded speedup over traditional.
func BenchmarkTable4Speedups(b *testing.B) {
	opt := benchOpt()
	opt.Benchmarks = []string{"cmp", "vor"}
	for i := 0; i < b.N; i++ {
		tab, err := harness.Table4(opt)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Cell("compress", "multi1%"), "cmp-multi1-%")
		b.ReportMetric(tab.Cell("vortex", "multi1%"), "vor-multi1-%")
	}
}

// --- Microbenchmarks of the substrates ---

// BenchmarkSimulatorThroughput measures raw simulation speed on the
// perfect-TLB configuration (the harness's baseline cost).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workload.ByName("mph")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Mech = core.MechPerfect
	cfg.MaxInsts = benchInsts
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg, w); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(benchInsts*uint64(b.N))/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkFunctionalThroughput measures the threaded-code functional
// tier (internal/fastpath) on the same workload — the fast-forward
// speed floor between sampled cycle-accurate windows. The budget is
// larger than benchInsts so one iteration outruns timer granularity;
// a fresh image and engine per iteration keeps decode cost honest.
func BenchmarkFunctionalThroughput(b *testing.B) {
	w, err := workload.ByName("mph")
	if err != nil {
		b.Fatal(err)
	}
	const ffInsts = 2_000_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		img, err := w.Build(mem.NewPhysical(), 1)
		if err != nil {
			b.Fatal(err)
		}
		eng, err := fastpath.New(img, fastpath.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.FastForward(ffInsts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(uint64(ffInsts)*uint64(b.N))/b.Elapsed().Seconds(), "sim-insts/s")
}

// BenchmarkAssembler measures assembly throughput on a representative
// source fragment.
func BenchmarkAssembler(b *testing.B) {
	src := `
		limm r10, 0x40000000
		ldi r1, 64
	loop:
		ldq r3, 0(r10)
		add r2, r2, r3
		addi r10, r10, 8
		addi r1, r1, -1
		bne r1, loop
		stq r2, -8(r10)
		halt
	`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := asm.Assemble(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection6Emulation regenerates the generalized-mechanism
// study (software POPC emulation).
func BenchmarkSection6Emulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Generalized(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Cell("traditional", tab.Cols[0]), "trad")
		b.ReportMetric(tab.Cell("multithreaded(1)", tab.Cols[0]), "multi1")
	}
}

// BenchmarkSection6Unaligned regenerates the unaligned-access study.
func BenchmarkSection6Unaligned(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := harness.Unaligned(benchOpt())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(tab.Cell("traditional", tab.Cols[0]), "trad")
		b.ReportMetric(tab.Cell("multithreaded(1)", tab.Cols[0]), "multi1")
	}
}

// --- Machine lifecycle: clone vs construction ---

// cloneBenchMachine builds a machine loaded with the mph workload,
// run partway so the pipeline, caches and predictors hold state —
// the scenario Clone exists for.
func cloneBenchMachine(b *testing.B) *core.Machine {
	b.Helper()
	w, err := workload.ByName("mph")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Mech = core.MechMultithreaded
	cfg.Contexts = 2
	cfg.MaxInsts = 20_000
	m := core.NewMachine(cfg)
	img, err := w.Build(m.Phys(), 1)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := m.AddProgram(img); err != nil {
		b.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkMachineClone measures forking a warmed-up machine.
func BenchmarkMachineClone(b *testing.B) {
	m := cloneBenchMachine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := m.Clone(); c == nil {
			b.Fatal("nil clone")
		}
	}
}

// BenchmarkMachineConstruction measures the path Clone replaces:
// building a machine from scratch (handler/PAL codegen, predictor and
// cache allocation) and loading the same workload image.
func BenchmarkMachineConstruction(b *testing.B) {
	w, err := workload.ByName("mph")
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Mech = core.MechMultithreaded
	cfg.Contexts = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := core.NewMachine(cfg)
		img, err := w.Build(m.Phys(), 1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := m.AddProgram(img); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCloneCheaperThanConstruction pins the economics that justify
// Clone's existence: forking a warmed machine must be at least an
// order of magnitude cheaper than rebuilding and reloading one.
func TestCloneCheaperThanConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison; skipped in -short")
	}
	clone := testing.Benchmark(BenchmarkMachineClone)
	construct := testing.Benchmark(BenchmarkMachineConstruction)
	cn, kn := clone.NsPerOp(), construct.NsPerOp()
	t.Logf("clone %d ns/op, construction %d ns/op (%.1fx)", cn, kn, float64(kn)/float64(cn))
	if cn*10 > kn {
		t.Errorf("Clone (%d ns/op) is not >=10x cheaper than construction (%d ns/op)", cn, kn)
	}
}
